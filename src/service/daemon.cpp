#include "service/daemon.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <system_error>

#include "arch/gpu_spec.h"
#include "common/error.h"
#include "common/faultinject.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "core/orion.h"
#include "isa/binary.h"
#include "persist/artifact.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "persist/session.h"
#include "runtime/launcher.h"
#include "service/protocol.h"
#include "telemetry/telemetry.h"
#include "workloads/workloads.h"

namespace orion::service {

namespace fs = std::filesystem;

namespace {

constexpr const char* kRequestFile = "/request";
constexpr const char* kAttemptsFile = "/attempts";
constexpr const char* kResultFile = "/result";
constexpr const char* kQuarantineFile = "/quarantine";

bool ValidJobId(const std::string& id) {
  return !id.empty() && id.find('/') == std::string::npos && id[0] != '.';
}

const arch::GpuSpec* GpuByName(const std::string& name) {
  if (name == "gtx680") {
    return &arch::Gtx680();
  }
  if (name == "c2075") {
    return &arch::TeslaC2075();
  }
  return nullptr;
}

// Decides whether a failed attempt is worth retrying.  Deterministic
// verdicts (bad spec, deadline exceeded) repeat identically; transient
// or corruption verdicts can change after session recovery.
bool DeterministicFailure(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kWatchdogExpired;
}

// Reads and decodes a terminal record; a record that exists but fails
// its frame is moved aside so the job can be recomputed (sessions make
// the re-run idempotent — same lock, bit-identical record).
bool TryLoadTerminal(const std::string& jobdir, JobResult* out) {
  for (const char* name : {kResultFile, kQuarantineFile}) {
    const std::string path = jobdir + name;
    if (!persist::FileExists(path)) {
      continue;
    }
    Result<std::vector<std::uint8_t>> bytes = persist::ReadFileBytes(path);
    if (bytes.has_value()) {
      Result<JobResult> decoded = DecodeResponse(*bytes);
      if (decoded.has_value()) {
        *out = std::move(*decoded);
        return true;
      }
    }
    ORION_LOG(WARN) << "service: terminal record " << path
                    << " unreadable — moving aside and recomputing";
    std::error_code ec;
    fs::rename(path, path + ".corrupt", ec);
  }
  return false;
}

persist::TuneArtifact TuneFromRun(const runtime::TunedRunResult& run) {
  persist::TuneArtifact tune;
  tune.final_version = run.final_version;
  tune.iterations_to_settle = run.iterations_to_settle;
  tune.steady_ms = run.steady_ms;
  tune.steady_energy = run.steady_energy;
  tune.steady_occupancy = run.steady_occupancy.occupancy;
  tune.fallback_taken = run.health.fallback_taken;
  tune.watchdog_trips = run.health.watchdog_trips;
  tune.faulted_iterations =
      static_cast<std::uint32_t>(run.health.faulted_iterations);
  return tune;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), queue_(options_.queue) {}

std::string Daemon::JobsDir() const { return options_.root + "/jobs"; }

std::string Daemon::JobDir(const std::string& id) const {
  return JobsDir() + "/" + id;
}

Status Daemon::Start() {
  if (options_.root.empty()) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "daemon needs a service root directory");
  }
  if (GpuByName(options_.gpu) == nullptr) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "unknown GPU '" + options_.gpu + "'");
  }
  if (options_.max_attempts == 0) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "max_attempts must be at least 1");
  }
  ORION_RETURN_IF_ERROR(persist::EnsureDir(options_.root));
  ORION_RETURN_IF_ERROR(persist::EnsureDir(JobsDir()));
  cache_ = std::make_unique<persist::ArtifactStore>(options_.root + "/cache");
  return Recover();
}

Status Daemon::Recover() {
  std::vector<std::string> ids;
  std::error_code ec;
  for (fs::directory_iterator it(JobsDir(), ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory()) {
      ids.push_back(it->path().filename().string());
    }
  }
  std::sort(ids.begin(), ids.end());
  for (const std::string& id : ids) {
    const std::string jobdir = JobDir(id);
    JobResult terminal;
    if (TryLoadTerminal(jobdir, &terminal)) {
      std::lock_guard<std::mutex> guard(mutex_);
      results_[id] = terminal;
      ++stats_.recovered_terminal;
      continue;
    }
    Result<std::vector<std::uint8_t>> bytes =
        persist::ReadFileBytes(jobdir + kRequestFile);
    Result<JobSpec> request =
        bytes.has_value() ? DecodeRequest(*bytes) : bytes.status();
    const std::uint64_t attempts = persist::FileSize(jobdir + kAttemptsFile);
    if (!request.has_value()) {
      if (bytes.status().code() == StatusCode::kNotFound && attempts == 0) {
        // The crash fell between the directory create and the request
        // write: the client never saw an acceptance (Submit died before
        // returning), so this is admission debris, not a lost job.
        // Remove it — the client's retry resubmits the same id fresh.
        ORION_LOG(WARN) << "service: dropping aborted admission '" << id
                        << "' (no request record, no attempts)";
        std::error_code remove_ec;
        fs::remove_all(jobdir, remove_ec);
        continue;
      }
      // Admission promised this id (the record exists but is garbage,
      // or execution already charged attempts against it): the honest
      // terminal state is quarantine, never silent loss.
      JobResult poisoned;
      poisoned.id = id;
      poisoned.state = JobState::kQuarantined;
      poisoned.attempts = static_cast<std::uint32_t>(attempts);
      poisoned.error =
          "admission record unreadable: " + request.status().ToString();
      CommitTerminal(jobdir, poisoned);
      continue;
    }
    if (attempts >= options_.max_attempts) {
      // The ledger says this job already burned its attempt budget —
      // it kept crashing the daemon.  Quarantine durably instead of
      // letting it crash-loop the service forever.
      JobResult poisoned;
      poisoned.id = id;
      poisoned.state = JobState::kQuarantined;
      poisoned.workload = request->workload;
      poisoned.attempts = static_cast<std::uint32_t>(attempts);
      poisoned.error = StrFormat(
          "poison job: %llu attempts ended in a crash or failure",
          static_cast<unsigned long long>(attempts));
      {
        std::lock_guard<std::mutex> guard(mutex_);
        ++stats_.poison_quarantined;
      }
      ORION_COUNTER_ADD("service.jobs.poison_quarantined", 1);
      CommitTerminal(jobdir, poisoned);
      continue;
    }
    // Admitted but not terminal: requeue.  force — a durably admitted
    // job must never bounce off a full queue.
    queue_.Push(*request, /*force=*/true);
    JobResult queued;
    queued.id = id;
    queued.state = JobState::kQueued;
    queued.workload = request->workload;
    queued.attempts = static_cast<std::uint32_t>(attempts);
    std::lock_guard<std::mutex> guard(mutex_);
    results_[id] = queued;
    ++stats_.requeued;
  }
  return Status::Ok();
}

bool Daemon::KnownJob(const std::string& id) const {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (results_.count(id) != 0) {
      return true;
    }
  }
  const std::string jobdir = JobDir(id);
  return persist::FileExists(jobdir + kRequestFile) ||
         persist::FileExists(jobdir + kResultFile) ||
         persist::FileExists(jobdir + kQuarantineFile);
}

void Daemon::Degrade(const std::string& reason) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!degraded_) {
    degraded_ = true;
    degraded_reason_ = reason;
    ORION_LOG(WARN) << "service: DEGRADED (read-only cache-serve): "
                    << reason;
    ORION_COUNTER_ADD("service.degraded", 1);
  }
}

bool Daemon::degraded() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return degraded_;
}

Admission Daemon::Submit(const JobSpec& spec) {
  // Invalid specs are rejected with no retry hint — retrying an id
  // that cannot name a job directory can never succeed.
  if (!ValidJobId(spec.id)) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.rejected;
    return {false, 0,
            "job id '" + spec.id +
                "' cannot name a job directory (empty, leading '.', or "
                "contains '/')"};
  }
  if (spec.workload.empty()) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.rejected;
    return {false, 0, "job names no workload"};
  }
  std::lock_guard<std::mutex> submit(submit_mutex_);
  if (degraded()) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.rejected;
    }
    return {false, options_.queue.retry_after_ms,
            "daemon degraded (ENOSPC): serving cached results only"};
  }
  // Idempotency: a known id is a duplicate, never a second execution.
  if (KnownJob(spec.id)) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.duplicates;
    return {true, 0, "duplicate: id already admitted"};
  }
  // Backpressure verdict + reservation, then the durable admission
  // record.  A crash between the two loses only the in-memory
  // reservation — the client saw no acceptance, and a spooled frame
  // survives for re-ingest.
  Admission admitted = queue_.Push(spec, /*force=*/false);
  if (!admitted.accepted) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.rejected;
    return admitted;
  }
  const std::string jobdir = JobDir(spec.id);
  Status durable = persist::EnsureDir(jobdir);
  if (durable.ok()) {
    durable = persist::WriteFileAtomic(jobdir + kRequestFile,
                                       EncodeRequest(spec));
  }
  if (!durable.ok()) {
    // The job stays queued (it will run and its result serves from
    // memory), but durability is gone — degrade so no further promises
    // are made that a crash could break.
    Degrade("admission record write failed: " + durable.ToString());
  }
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.submitted;
  JobResult queued;
  queued.id = spec.id;
  queued.state = JobState::kQueued;
  queued.workload = spec.workload;
  results_[spec.id] = queued;
  return admitted;
}

std::size_t Daemon::IngestSpool() {
  const std::string spool = SpoolDir(options_.root);
  std::vector<std::string> frames;
  for (const std::string& name : persist::ListDir(spool)) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".req") == 0) {
      frames.push_back(name);
    }
  }
  std::sort(frames.begin(), frames.end());
  std::size_t ingested = 0;
  for (const std::string& name : frames) {
    const std::string path = spool + "/" + name;
    Result<JobSpec> spec = ReadSpoolRequest(path);
    if (!spec.has_value()) {
      // Corrupt frame: set it aside (never deleted — the bytes stay
      // for post-mortems) so the spool drains instead of jamming.
      ORION_LOG(WARN) << "service: spool frame " << name << " rejected ("
                      << spec.status().ToString() << ") — quarantined";
      std::error_code ec;
      fs::rename(path, path + ".quarantine", ec);
      ORION_COUNTER_ADD("service.spool.quarantined", 1);
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.spool_quarantined;
      continue;
    }
    Admission admitted = Submit(*spec);
    if (!admitted.accepted && admitted.retry_after_ms > 0) {
      // Backpressure: leave the frame for the next ingest pass.
      continue;
    }
    if (!admitted.accepted) {
      // Invalid spec: the frame can never be admitted.
      std::error_code ec;
      fs::rename(path, path + ".quarantine", ec);
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.spool_quarantined;
      continue;
    }
    // Remove only after the durable admission record exists — a crash
    // here re-ingests the frame and the duplicate is detected by id.
    (void)persist::RemoveFile(path);
    ++ingested;
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.spool_ingested;
  }
  return ingested;
}

void Daemon::ServeUntilDrained() {
  queue_.Close();
  const unsigned workers = std::max(1u, options_.workers);
  // The worker pool IS ParallelFor: each lane claims jobs from the
  // shared queue until it is drained.  An injected crash in one lane
  // propagates after the surviving lanes finish their jobs.
  ParallelFor(workers, workers, [this](std::size_t) { WorkerLoop(); });
}

void Daemon::WorkerLoop() {
  JobSpec spec;
  while (queue_.Pop(&spec)) {
    ExecuteJob(spec);
  }
}

void Daemon::ExecuteJob(const JobSpec& spec) {
  const auto started = std::chrono::steady_clock::now();
  const std::string jobdir = JobDir(spec.id);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    JobResult running;
    running.id = spec.id;
    running.state = JobState::kRunning;
    running.workload = spec.workload;
    results_[spec.id] = running;
  }
  // Attempts already charged by previous daemon lives (crash recovery).
  std::uint32_t attempt =
      static_cast<std::uint32_t>(persist::FileSize(jobdir + kAttemptsFile));
  JobResult result;
  double backoff_ms = 0.0;
  Status last = Status::Ok();
  bool done = false;
  while (!done && attempt < options_.max_attempts) {
    ++attempt;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.attempts;
    }
    // Charge the attempt *before* running it: if this attempt kills
    // the daemon, the ledger already shows it, and enough crashes
    // quarantine the job instead of crash-looping the service.
    (void)persist::AppendFile(jobdir + kAttemptsFile, {0xA7});
    FaultInjector* injector = FaultInjector::Current();
    if (injector != nullptr && injector->NextJobStartKills()) {
      persist::CrashNow(StrFormat(
          "service: daemon killed mid-job '%s' (attempt %u)",
          spec.id.c_str(), attempt));
    }
    Result<JobResult> attempted = RunAttempt(spec, jobdir);
    if (attempted.has_value()) {
      result = std::move(*attempted);
      done = true;
      break;
    }
    last = attempted.status();
    ORION_LOG(WARN) << "service: job '" << spec.id << "' attempt " << attempt
                    << "/" << options_.max_attempts << " failed: "
                    << last.ToString();
    ORION_COUNTER_ADD("service.jobs.attempt_failures", 1);
    if (DeterministicFailure(last.code())) {
      break;  // retrying replays the same verdict — quarantine now
    }
    if (attempt < options_.max_attempts) {
      // Accounted, never slept: simulated time, like guard backoff.
      backoff_ms += options_.backoff_base_ms *
                    static_cast<double>(std::uint64_t{1} << (attempt - 1));
    }
  }
  if (!done) {
    result.id = spec.id;
    result.state = JobState::kQuarantined;
    result.workload = spec.workload;
    result.error = last.ToString();
    ORION_COUNTER_ADD("service.jobs.quarantined", 1);
  }
  result.attempts = attempt;
  result.backoff_ms = backoff_ms;
  CommitTerminal(jobdir, result);
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  ORION_HISTOGRAM_RECORD("service.job.latency_ms", latency_ms);
}

Result<JobResult> Daemon::RunAttempt(const JobSpec& spec,
                                     const std::string& jobdir) {
  try {
    const workloads::Workload w = workloads::MakeWorkload(spec.workload);
    const std::uint32_t iters =
        spec.iterations == 0 ? w.iterations : spec.iterations;
    const std::vector<std::uint8_t> image = isa::EncodeModule(w.module);
    const std::uint64_t kernel_hash =
        persist::Fnv64(image.data(), image.size());
    // Content address shared across jobs: the id is deliberately NOT
    // part of it, so a fleet of submissions of the same kernel shares
    // one tuning.  The deadline is: a cached entry only exists if a
    // prior job with the same budget met it.
    const std::string fingerprint = StrFormat(
        "svc,cache=%d,engine=%d,iters=%u,probe_k=%u,watchdog=%llu,"
        "deadline=%g",
        static_cast<int>(options_.cache), static_cast<int>(options_.engine),
        iters, spec.probe_k,
        static_cast<unsigned long long>(spec.watchdog_cycles),
        spec.deadline_ms);
    const persist::ArtifactKey binary_key{"binary", kernel_hash, options_.gpu,
                                          fingerprint};
    const persist::ArtifactKey tune_key{"tune", kernel_hash, options_.gpu,
                                        fingerprint};

    // Shared warm cache: an earlier job already tuned this content
    // address — serve its locked decision without simulating.
    {
      std::lock_guard<std::mutex> guard(cache_mutex_);
      Result<std::vector<std::uint8_t>> tune_bytes = cache_->Get(tune_key);
      if (tune_bytes.has_value()) {
        Result<std::vector<std::uint8_t>> binary_bytes =
            cache_->Get(binary_key);
        if (binary_bytes.has_value()) {
          Result<persist::TuneArtifact> tune =
              persist::DecodeTuneArtifact(*tune_bytes);
          Result<runtime::MultiVersionBinary> binary =
              persist::DecodeBinaryArtifact(*binary_bytes);
          if (tune.has_value() && binary.has_value() &&
              tune->final_version < binary->NumCandidates()) {
            JobResult served;
            served.id = spec.id;
            served.state = JobState::kLocked;
            served.workload = spec.workload;
            served.final_version = tune->final_version;
            served.final_tag = binary->Candidate(tune->final_version).tag;
            served.iterations_to_settle = tune->iterations_to_settle;
            served.steady_ms = tune->steady_ms;
            served.fallback_taken = tune->fallback_taken;
            served.warm_hit = true;
            {
              std::lock_guard<std::mutex> stats_guard(mutex_);
              ++stats_.warm_hits;
            }
            ORION_COUNTER_ADD("service.cache.warm_hits", 1);
            return served;
          }
          // A corrupt cache entry was quarantined by Get/decode —
          // fall through and recompute (cold path repopulates it).
        }
      }
    }

    // Cold path: the job's own crash-safe session.  Everything from
    // here is the orion-cc run pipeline, isolated under the job dir.
    persist::SessionMeta meta;
    meta.kernel_hash = kernel_hash;
    meta.gpu = options_.gpu;
    meta.fingerprint = fingerprint;
    Result<std::unique_ptr<persist::Session>> opened =
        persist::Session::Open(jobdir + "/session", meta);
    if (!opened.has_value()) {
      return opened.status();
    }
    persist::Session& session = **opened;

    runtime::MultiVersionBinary binary;
    bool have_binary = false;
    if (session.HasLock()) {
      // A previous attempt locked but died before the result commit.
      Result<runtime::MultiVersionBinary> warm = session.LoadBinary();
      if (warm.has_value() &&
          session.lock().final_version < warm->NumCandidates()) {
        const persist::TuneArtifact& lock = session.lock();
        JobResult resumed;
        resumed.id = spec.id;
        resumed.state = JobState::kLocked;
        resumed.workload = spec.workload;
        resumed.final_version = lock.final_version;
        resumed.final_tag = warm->Candidate(lock.final_version).tag;
        resumed.iterations_to_settle = lock.iterations_to_settle;
        resumed.steady_ms = lock.steady_ms;
        resumed.fallback_taken = lock.fallback_taken;
        PublishCache(binary_key, tune_key,
                     persist::EncodeBinaryArtifact(*warm),
                     persist::EncodeTuneArtifact(lock));
        return resumed;
      }
      ORION_LOG(WARN) << "service: job '" << spec.id
                      << "' lock present but binary artifact unusable ("
                      << warm.status().ToString() << ") — recomputing";
    }
    if (!have_binary) {
      Result<runtime::MultiVersionBinary> cached = session.LoadBinary();
      if (cached.has_value()) {
        binary = std::move(*cached);
        have_binary = true;
      }
    }
    const arch::GpuSpec& gpu = *GpuByName(options_.gpu);
    if (!have_binary) {
      core::TuneOptions tune_options;
      tune_options.cache_config = options_.cache;
      tune_options.can_tune = w.can_tune;
      binary = core::CompileMultiVersion(w.module, gpu, tune_options);
      (void)session.SaveBinary(binary);  // failure logged by the store
    }
    sim::GpuSimulator simulator(gpu, options_.cache, options_.engine);
    sim::GlobalMemory gmem = workloads::SeedWorkloadMemory(w);
    runtime::TunedLauncher launcher(&binary, &simulator);
    runtime::RunPlan plan;
    plan.iterations = iters;
    plan.probe_count = spec.probe_k;
    plan.guard.watchdog_cycle_budget = spec.watchdog_cycles;
    plan.journal = &session;
    const runtime::TunedRunResult run = launcher.Run(
        &gmem, w.params, plan,
        w.per_iteration_params.empty() ? nullptr : &w.per_iteration_params);
    if (spec.deadline_ms > 0 && run.total_ms > spec.deadline_ms) {
      // Deterministic — replaying the same tuning yields the same
      // simulated total.  The shared cache is NOT fed, so no later job
      // can warm-hit its way past a budget this content address missed.
      return Status::Error(
          StatusCode::kWatchdogExpired,
          StrFormat("deadline exceeded: %.4f simulated ms > budget %.4f ms",
                    run.total_ms, spec.deadline_ms));
    }
    JobResult completed;
    completed.id = spec.id;
    completed.state = JobState::kLocked;
    completed.workload = spec.workload;
    completed.final_version = run.final_version;
    completed.final_tag = binary.Candidate(run.final_version).tag;
    completed.iterations_to_settle = run.iterations_to_settle;
    completed.steady_ms = run.steady_ms;
    completed.fallback_taken = run.health.fallback_taken;
    PublishCache(binary_key, tune_key, persist::EncodeBinaryArtifact(binary),
                 persist::EncodeTuneArtifact(TuneFromRun(run)));
    return completed;
  } catch (const persist::SimulatedCrash&) {
    throw;  // an injected daemon kill is not a job failure
  } catch (const persist::JournalError& e) {
    return Status::Error(StatusCode::kDataLoss, e.what());
  } catch (const OrionError& e) {
    return Status::Error(StatusCode::kInvalidArgument, e.what());
  }
}

void Daemon::PublishCache(const persist::ArtifactKey& binary_key,
                          const persist::ArtifactKey& tune_key,
                          const std::vector<std::uint8_t>& binary_bytes,
                          const std::vector<std::uint8_t>& tune_bytes) {
  std::lock_guard<std::mutex> guard(cache_mutex_);
  // Binary first: a crash between the two leaves a tune-less binary
  // (a clean miss), never a tune pointing at a missing binary.
  Status put = cache_->Put(binary_key, binary_bytes);
  if (put.ok()) {
    put = cache_->Put(tune_key, tune_bytes);
  }
  if (!put.ok()) {
    if (put.code() == StatusCode::kResourceExhausted) {
      Degrade("shared cache write failed: " + put.ToString());
    }
    ORION_LOG(WARN) << "service: shared cache publish failed: "
                    << put.ToString();
  }
}

void Daemon::CommitTerminal(const std::string& jobdir,
                            const JobResult& result) {
  const std::string path =
      jobdir + (result.state == JobState::kQuarantined ? kQuarantineFile
                                                       : kResultFile);
  Status commit = Status::Ok();
  FaultInjector* injector = FaultInjector::Current();
  if (injector != nullptr && injector->ShouldFailResultCommit()) {
    commit = Status::Error(StatusCode::kResourceExhausted,
                           "injected ENOSPC committing the job record");
  } else {
    commit = persist::WriteFileAtomic(path, EncodeResponse(result));
  }
  if (!commit.ok()) {
    if (commit.code() == StatusCode::kResourceExhausted) {
      Degrade("job record commit failed: " + commit.ToString());
    } else {
      ORION_LOG(ERROR) << "service: job record commit failed: "
                       << commit.ToString();
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  results_[result.id] = result;
  if (result.state == JobState::kLocked) {
    ++stats_.completed;
  } else if (result.state == JobState::kQuarantined) {
    ++stats_.quarantined;
  }
}

Result<JobResult> Daemon::Query(const std::string& id) const {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = results_.find(id);
    if (it != results_.end()) {
      return it->second;
    }
  }
  return QueryJobDir(options_.root, id);
}

std::vector<JobResult> Daemon::List() const {
  std::map<std::string, JobResult> merged;
  for (JobResult& job : ListJobDirs(options_.root)) {
    merged[job.id] = std::move(job);
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& [id, job] : results_) {
      merged[id] = job;  // live state wins over the durable snapshot
    }
  }
  std::vector<JobResult> jobs;
  jobs.reserve(merged.size());
  for (auto& [id, job] : merged) {
    jobs.push_back(std::move(job));
  }
  return jobs;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

Result<JobResult> QueryJobDir(const std::string& root,
                              const std::string& id) {
  const std::string jobdir = root + "/jobs/" + id;
  for (const char* name : {kResultFile, kQuarantineFile}) {
    const std::string path = jobdir + name;
    if (!persist::FileExists(path)) {
      continue;
    }
    Result<std::vector<std::uint8_t>> bytes = persist::ReadFileBytes(path);
    if (!bytes.has_value()) {
      return bytes.status();
    }
    return DecodeResponse(*bytes);
  }
  const std::string request = jobdir + kRequestFile;
  if (persist::FileExists(request)) {
    Result<std::vector<std::uint8_t>> bytes = persist::ReadFileBytes(request);
    if (!bytes.has_value()) {
      return bytes.status();
    }
    Result<JobSpec> spec = DecodeRequest(*bytes);
    if (!spec.has_value()) {
      return spec.status();
    }
    JobResult queued;
    queued.id = id;
    queued.state = JobState::kQueued;
    queued.workload = spec->workload;
    queued.attempts = static_cast<std::uint32_t>(
        persist::FileSize(jobdir + kAttemptsFile));
    return queued;
  }
  return Status::Error(StatusCode::kNotFound,
                       "no record of job '" + id + "' under " + root);
}

std::vector<JobResult> ListJobDirs(const std::string& root) {
  std::vector<std::string> ids;
  std::error_code ec;
  for (fs::directory_iterator it(root + "/jobs", ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory()) {
      ids.push_back(it->path().filename().string());
    }
  }
  std::sort(ids.begin(), ids.end());
  std::vector<JobResult> jobs;
  for (const std::string& id : ids) {
    Result<JobResult> job = QueryJobDir(root, id);
    if (job.has_value()) {
      jobs.push_back(std::move(*job));
    } else {
      JobResult unreadable;
      unreadable.id = id;
      unreadable.state = JobState::kQuarantined;
      unreadable.error = "record unreadable: " + job.status().ToString();
      jobs.push_back(std::move(unreadable));
    }
  }
  return jobs;
}

}  // namespace orion::service
