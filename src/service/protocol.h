// Wire-free client protocol for orion-d: length-prefixed, checksummed
// request/response frames over a file-based job spool.
//
// A frame is persist/codec bytes:
//
//   u32 magic ('OREQ' requests, 'ORSP' responses)
//   u32 format version
//   u64 FNV-1a 64 of the payload
//   u32 payload length | payload    (codec Blob)
//
// The checksum makes a spool frame self-verifying: a torn write or a
// flipped bit (service.spool_bitflip) decodes to kDataLoss, and the
// daemon quarantines the frame aside instead of admitting garbage — a
// corrupt request is never partially believed.
//
// The spool is the client/daemon hand-off directory:
//
//   <root>/spool/<id>.req             a submitted request frame
//   <root>/spool/<id>.req.quarantine  a frame that failed its checksum
//
// `orion-cc submit` writes request frames (atomically, temp+rename);
// the daemon ingests them with IngestSpool(), removing each frame only
// after the job's durable admission record exists — a crash between
// the two re-ingests the frame, and the duplicate admission is
// detected by job id (idempotent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/job.h"

namespace orion::service {

inline constexpr std::uint32_t kRequestMagic = 0x4f524551;   // 'OREQ'
inline constexpr std::uint32_t kResponseMagic = 0x4f525350;  // 'ORSP'
inline constexpr std::uint32_t kProtocolFormat = 1;

std::vector<std::uint8_t> EncodeRequest(const JobSpec& spec);
Result<JobSpec> DecodeRequest(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> EncodeResponse(const JobResult& result);
Result<JobResult> DecodeResponse(const std::vector<std::uint8_t>& bytes);

// Spool paths under a service root.
std::string SpoolDir(const std::string& root);
std::string SpoolRequestPath(const std::string& root, const std::string& id);

// Writes the request frame to the spool (atomic temp+rename commit).
// Refuses ids that cannot name a file ('/' or empty).
Status SpoolSubmit(const std::string& root, const JobSpec& spec);

// Reads one spool frame and decodes it.  An installed fault injector
// may flip a bit first (service.spool_bitflip); the checksum catches
// it and the caller quarantines the frame.
Result<JobSpec> ReadSpoolRequest(const std::string& path);

}  // namespace orion::service
