// orion-d: the fault-isolated tuning-as-a-service daemon core.
//
// The daemon turns the single-shot `orion-cc run --session` pipeline
// into a job service.  Every submitted job gets
//
//   <root>/jobs/<id>/request      durable admission record (a protocol
//                                 request frame — the promise recovery
//                                 holds the daemon to)
//   <root>/jobs/<id>/attempts     attempt ledger: one byte appended at
//                                 the *start* of each execution attempt,
//                                 so a job that crashes the daemon is
//                                 charged for the attempt it killed
//   <root>/jobs/<id>/session/     its own crash-safe persist::Session
//                                 (journal + artifact store + advisory
//                                 lock) — one job's corruption or crash
//                                 never touches another's state
//   <root>/jobs/<id>/result       terminal success (a response frame)
//   <root>/jobs/<id>/quarantine   terminal failure (a response frame
//                                 naming the poison job's last error)
//
// plus a *shared* content-addressed cache at <root>/cache: the first
// job to tune a (kernel, gpu, options) triple publishes its binary and
// locked decision, and every later job with the same content address
// is served warm without touching the simulator.
//
// Fault isolation:
//   * each attempt runs under the job's own session; a JournalError or
//     decode fault is caught at the attempt boundary, charged against
//     the job (bounded retry, exponential accounted backoff), and the
//     daemon keeps serving other jobs;
//   * a job that fails (or kills the daemon — the attempt ledger
//     survives the crash) max_attempts times is quarantined with a
//     durable record instead of crash-looping the daemon forever;
//   * a deadline (simulated-ms budget) violation is deterministic and
//     quarantines immediately, no retries;
//   * ENOSPC while committing a durable record degrades the daemon to
//     read-only cache-serve: queued work finishes, in-memory results
//     stay queryable, and every new admission is rejected with a retry
//     hint until an operator restarts it with space.
//
// Recovery (Start): every job directory is classified into exactly one
// state — terminal records are reloaded, a corrupt terminal record is
// moved aside and the job re-run (sessions make the re-run idempotent
// and bit-identical), jobs whose attempt ledger is already at the cap
// are quarantined as poison, and everything else is requeued (force:
// a durably admitted job must never bounce off a full queue).  No
// admitted job is ever lost, and none is double-committed.
//
// Threading: ServeUntilDrained shards the queue across a worker pool
// built on common/parallel.h ParallelFor — workers claim jobs from the
// shared queue until it is closed and drained.  An injected daemon
// kill (service.kill_at_job / persist.kill_at) propagates out of the
// pool after the surviving workers finish, preserving the
// crash-at-a-point semantics the chaos matrix replays.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/store.h"
#include "service/queue.h"
#include "sim/gpu_sim.h"

namespace orion::service {

struct DaemonOptions {
  std::string root;        // service root (spool/, jobs/, cache/)
  unsigned workers = 1;    // worker pool width (ParallelFor lanes)
  QueueOptions queue;
  std::uint32_t max_attempts = 3;  // per-job attempt cap before quarantine
  double backoff_base_ms = 0.25;   // accounted exponential retry backoff
  std::string gpu = "gtx680";
  arch::CacheConfig cache = arch::CacheConfig::kSmallCache;
  sim::SimEngine engine = sim::SimEngine::kTraceCached;
};

struct DaemonStats {
  std::uint64_t submitted = 0;           // accepted fresh admissions
  std::uint64_t duplicates = 0;          // resubmitted ids (idempotent)
  std::uint64_t rejected = 0;            // backpressure / bad spec / degraded
  std::uint64_t requeued = 0;            // recovery requeues
  std::uint64_t recovered_terminal = 0;  // terminal records reloaded
  std::uint64_t poison_quarantined = 0;  // attempt ledger hit the cap
  std::uint64_t completed = 0;           // jobs that locked
  std::uint64_t quarantined = 0;         // jobs that exhausted attempts
  std::uint64_t warm_hits = 0;           // served from the shared cache
  std::uint64_t attempts = 0;            // execution attempts started
  std::uint64_t spool_ingested = 0;
  std::uint64_t spool_quarantined = 0;   // corrupt spool frames set aside
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);

  // Creates the service directories and runs the recovery scan.
  // kInvalidArgument: unusable options (unknown GPU, empty root).
  Status Start();

  // Admission control.  Rejections carry a retry hint (backpressure,
  // degraded) or none (invalid spec — retrying cannot help).  A known
  // id is accepted as a duplicate without a second execution.
  Admission Submit(const JobSpec& spec);

  // Drains <root>/spool: each intact frame is submitted and its file
  // removed only after the durable admission record exists (a crash
  // between the two re-ingests the frame; the duplicate is detected by
  // id).  Corrupt frames are quarantined aside.  Backpressure leaves
  // the frame in place for the next pass.  Returns frames admitted.
  std::size_t IngestSpool();

  // Closes the queue and runs the worker pool until every queued job
  // is terminal.  New Submits are rejected once draining starts.
  void ServeUntilDrained();

  // In-memory state first (live daemon), then the durable records.
  Result<JobResult> Query(const std::string& id) const;
  std::vector<JobResult> List() const;

  DaemonStats stats() const;
  JobQueue::Stats queue_stats() const { return queue_.stats(); }
  persist::ArtifactStore::Stats cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : persist::ArtifactStore::Stats{};
  }
  bool degraded() const;
  const DaemonOptions& options() const { return options_; }

 private:
  std::string JobDir(const std::string& id) const;
  std::string JobsDir() const;
  Status Recover();
  bool KnownJob(const std::string& id) const;
  void Degrade(const std::string& reason);
  void WorkerLoop();
  void ExecuteJob(const JobSpec& spec);
  Result<JobResult> RunAttempt(const JobSpec& spec, const std::string& jobdir);
  // Writes the terminal record (result or quarantine) and publishes it
  // in memory.  An ENOSPC commit degrades the daemon but the in-memory
  // result still serves queries for this daemon's lifetime.
  void CommitTerminal(const std::string& jobdir, const JobResult& result);
  void PublishCache(const persist::ArtifactKey& binary_key,
                    const persist::ArtifactKey& tune_key,
                    const std::vector<std::uint8_t>& binary_bytes,
                    const std::vector<std::uint8_t>& tune_bytes);

  DaemonOptions options_;
  JobQueue queue_;
  // Created in Start() once the root is validated (the store constructor
  // creates its directory as a side effect).
  std::unique_ptr<persist::ArtifactStore> cache_;

  // Serializes admission (validate → probe → durable record → enqueue)
  // so the capacity probe and the durable write cannot interleave.
  mutable std::mutex submit_mutex_;
  // Guards results_, stats_, degraded_reason_.
  mutable std::mutex mutex_;
  std::map<std::string, JobResult> results_;
  DaemonStats stats_;
  bool degraded_ = false;
  std::string degraded_reason_;
  // The shared cache is not internally synchronized.
  std::mutex cache_mutex_;
};

// Offline queries against a service root, for `orion-cc status` without
// a live daemon.  kNotFound: no record of the id; kDataLoss: a record
// exists but fails its frame checksum.
Result<JobResult> QueryJobDir(const std::string& root, const std::string& id);
std::vector<JobResult> ListJobDirs(const std::string& root);

}  // namespace orion::service
