#include "arch/gpu_spec.h"

namespace orion::arch {

const GpuSpec& Gtx680() {
  static const GpuSpec spec = [] {
    GpuSpec s;
    s.name = "GTX680";
    // Section 4: 8 SMs x 192 cores = 1536 cores; 65536 registers per SM;
    // 64KB combined shared memory + L1; 64 warps / 2048 threads per SM.
    s.num_sms = 8;
    s.cores_per_sm = 192;
    s.registers_per_sm = 65536;
    s.max_warps_per_sm = 64;
    s.max_threads_per_sm = 2048;
    s.max_blocks_per_sm = 16;
    s.max_regs_per_thread = 63;
    s.reg_alloc_unit = 256;   // Kepler: warp-level register granularity
    s.smem_alloc_unit = 256;
    // GK104: L1 serves local (spill) traffic only; global loads go to L2.
    s.l1_caches_global = false;
    s.supports_power_measurement = false;
    s.timing.core_clock_mhz = 1006.0;
    // Kepler has wider issue and more bandwidth than Fermi.
    s.timing.warp_issue_per_cycle = 2;
    s.timing.dram_transactions_per_cycle = 3.0;
    s.timing.l2_transactions_per_cycle = 10.0;
    s.timing.l2_bytes = 512 * 1024;
    return s;
  }();
  return spec;
}

const GpuSpec& TeslaC2075() {
  static const GpuSpec spec = [] {
    GpuSpec s;
    s.name = "TeslaC2075";
    // Section 4: 14 SMs x 32 cores = 448 cores; 32768 registers per SM;
    // 64KB combined shared memory + L1; 48 warps / 1536 threads per SM.
    s.num_sms = 14;
    s.cores_per_sm = 32;
    s.registers_per_sm = 32768;
    s.max_warps_per_sm = 48;
    s.max_threads_per_sm = 1536;
    s.max_blocks_per_sm = 8;
    s.max_regs_per_thread = 63;
    s.reg_alloc_unit = 64;    // Fermi: warp-level register granularity
    s.smem_alloc_unit = 128;
    // GF110: L1 caches both global and local accesses.
    s.l1_caches_global = true;
    s.supports_power_measurement = true;
    s.timing.core_clock_mhz = 1147.0;
    // Fermi's off-chip latencies were notoriously high.
    s.timing.l2_latency = 240;
    s.timing.dram_latency = 600;
    s.timing.warp_issue_per_cycle = 1;
    s.timing.dram_transactions_per_cycle = 2.0;
    s.timing.l2_transactions_per_cycle = 8.0;
    return s;
  }();
  return spec;
}

}  // namespace orion::arch
