// GPU occupancy calculator.
//
// Implements Equation (1) of the paper plus the rounding rules of the
// NVIDIA occupancy calculator the paper defers to: register allocation
// granularity at warp level, shared-memory allocation granularity at
// block level, and the block/warp/thread scheduling limits.
//
// Two directions are provided:
//   * forward  — given a kernel's resource usage, what occupancy results;
//   * inverse  — given a target occupancy level (active blocks per SM),
//     what per-thread register and per-block shared-memory budgets
//     realize it.  The Orion compiler's "realizing occupancy" stage
//     (Section 3.2) allocates against these budgets.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"

namespace orion::arch {

struct KernelResources {
  std::uint32_t regs_per_thread = 0;
  std::uint32_t smem_bytes_per_block = 0;
  std::uint32_t block_dim = 256;
};

enum class OccupancyLimiter : std::uint8_t {
  kRegisters,
  kSharedMemory,
  kWarpSlots,
  kBlockSlots,
};

struct OccupancyResult {
  std::uint32_t active_blocks_per_sm = 0;
  std::uint32_t active_warps_per_sm = 0;
  std::uint32_t active_threads_per_sm = 0;
  double occupancy = 0.0;  // active warps / max warps
  OccupancyLimiter limiter = OccupancyLimiter::kWarpSlots;
};

// Forward direction.  Returns zero active blocks when the kernel cannot
// run at all (resources exceed a whole SM).
OccupancyResult ComputeOccupancy(const GpuSpec& spec, CacheConfig config,
                                 const KernelResources& resources);

// One realizable occupancy step: running `blocks_per_sm` blocks
// concurrently, with the largest resource budgets that still allow it.
struct OccupancyLevel {
  std::uint32_t blocks_per_sm = 0;
  std::uint32_t warps_per_sm = 0;
  double occupancy = 0.0;
  // Largest per-thread register count that still admits blocks_per_sm
  // concurrent blocks (capped at the hardware per-thread maximum).
  std::uint32_t reg_budget_per_thread = 0;
  // Largest per-block shared-memory footprint that still admits it.
  std::uint32_t smem_budget_per_block = 0;
};

// All realizable occupancy levels for a block size, highest occupancy
// first.  Levels whose register budget would be zero are dropped.
std::vector<OccupancyLevel> EnumerateOccupancyLevels(const GpuSpec& spec,
                                                     CacheConfig config,
                                                     std::uint32_t block_dim);

// Inverse direction for a specific block count (throws CompileError if
// unachievable for this block size).
OccupancyLevel LevelForBlocks(const GpuSpec& spec, CacheConfig config,
                              std::uint32_t block_dim,
                              std::uint32_t blocks_per_sm);

// Warps per block after the warp-granularity round-up.
std::uint32_t WarpsPerBlock(const GpuSpec& spec, std::uint32_t block_dim);

}  // namespace orion::arch
