// GPU architecture models.
//
// The paper evaluates on two machines: an NVIDIA GTX680 (Kepler GK104)
// and a Tesla C2075 (Fermi GF110).  These structs carry the exact
// resource parameters the paper quotes plus the rounding granularities
// of the NVIDIA occupancy calculator, and the timing/energy parameters
// consumed by the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace orion::arch {

// L1/shared-memory split of the 64KB on-chip SRAM (Section 4, Table 3).
enum class CacheConfig : std::uint8_t {
  kSmallCache = 0,  // 16KB L1 + 48KB shared memory ("SC", the default)
  kLargeCache,      // 48KB L1 + 16KB shared memory ("LC")
};

struct TimingParams {
  // Issue/dependency latencies (cycles).
  std::uint32_t alu_latency = 10;
  std::uint32_t sfu_latency = 40;       // FSQRT/FRCP/FEXP
  std::uint32_t smem_latency = 30;
  std::uint32_t l1_latency = 40;
  std::uint32_t l2_latency = 180;
  std::uint32_t dram_latency = 420;
  // Throughputs.
  std::uint32_t warp_issue_per_cycle = 1;   // instructions issued per SM cycle
  std::uint32_t sfu_throughput_shift = 2;   // SFU issue occupies 2^k cycles
  // DRAM bandwidth: global memory transactions (128B) retired per cycle
  // across the whole chip; requests beyond this queue.
  double dram_transactions_per_cycle = 2.0;
  // L2 bandwidth in transactions per cycle across the chip.
  double l2_transactions_per_cycle = 8.0;
  // Clock in MHz, used only to convert cycles to milliseconds in reports.
  double core_clock_mhz = 1000.0;
  // Cache geometry.
  std::uint32_t cache_line_bytes = 128;
  std::uint32_t l1_assoc = 4;
  std::uint32_t l2_bytes = 768 * 1024;
  std::uint32_t l2_assoc = 8;
  // Control overheads.
  std::uint32_t barrier_latency = 20;
  std::uint32_t block_install_cycles = 100;
  std::uint32_t kernel_launch_overhead = 3000;  // per kernel invocation
};

struct EnergyParams {
  // Dynamic energy per executed warp-instruction, by class (arbitrary
  // energy units; only ratios matter for the normalized Fig. 13 plot).
  double alu_energy = 1.0;
  double sfu_energy = 4.0;
  double smem_energy = 2.0;
  double l1_energy = 3.0;
  double l2_energy = 12.0;
  double dram_energy = 60.0;
  // Static/leakage power per SM-cycle: a base component plus a component
  // proportional to the *allocated* fraction of the register file and
  // shared memory (the paper's observation that lower occupancy powers
  // down register resources).
  double base_static_power = 2.0;
  double regfile_static_power = 3.0;  // × allocated-registers fraction
  double smem_static_power = 1.0;    // × allocated-smem fraction
};

struct GpuSpec {
  std::string name;
  std::uint32_t num_sms = 0;
  std::uint32_t cores_per_sm = 0;
  std::uint32_t registers_per_sm = 0;     // 32-bit registers
  std::uint32_t onchip_sram_bytes = 65536;  // L1 + shared memory combined
  std::uint32_t max_warps_per_sm = 0;
  std::uint32_t max_threads_per_sm = 0;
  std::uint32_t max_blocks_per_sm = 8;
  std::uint32_t warp_size = 32;
  std::uint32_t max_regs_per_thread = 63;
  // Occupancy-calculator rounding rules.
  std::uint32_t reg_alloc_unit = 0;       // registers, allocated per warp
  std::uint32_t smem_alloc_unit = 128;    // bytes, per block
  // Whether the L1 caches global loads (Fermi) or only local spills
  // (Kepler GK104) — Section 4.2 attributes the easier low-occupancy
  // speedups on C2075 to this difference.
  bool l1_caches_global = true;
  bool supports_power_measurement = true;  // GTX680 does not (Fig. 13)

  TimingParams timing;
  EnergyParams energy;

  std::uint32_t SmemBytes(CacheConfig config) const {
    return config == CacheConfig::kSmallCache ? 48 * 1024 : 16 * 1024;
  }
  std::uint32_t L1Bytes(CacheConfig config) const {
    return onchip_sram_bytes - SmemBytes(config);
  }
};

// The two evaluation platforms (Section 4 "Platform").
const GpuSpec& Gtx680();
const GpuSpec& TeslaC2075();

}  // namespace orion::arch
