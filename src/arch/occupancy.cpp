#include "arch/occupancy.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace orion::arch {

namespace {

std::uint32_t AlignUp(std::uint32_t value, std::uint32_t unit) {
  return (value + unit - 1) / unit * unit;
}

std::uint32_t AlignDown(std::uint32_t value, std::uint32_t unit) {
  return value / unit * unit;
}

}  // namespace

std::uint32_t WarpsPerBlock(const GpuSpec& spec, std::uint32_t block_dim) {
  ORION_CHECK(block_dim > 0);
  return (block_dim + spec.warp_size - 1) / spec.warp_size;
}

OccupancyResult ComputeOccupancy(const GpuSpec& spec, CacheConfig config,
                                 const KernelResources& resources) {
  const std::uint32_t warps_per_block = WarpsPerBlock(spec, resources.block_dim);

  OccupancyResult result;

  // Scheduling limits.
  const std::uint32_t by_warps = spec.max_warps_per_sm / warps_per_block;
  const std::uint32_t by_threads =
      spec.max_threads_per_sm / (warps_per_block * spec.warp_size);
  const std::uint32_t by_blocks = spec.max_blocks_per_sm;

  // Register limit: registers are allocated per warp, rounded up to the
  // architecture's register allocation unit.
  std::uint32_t by_regs = UINT32_MAX;
  if (resources.regs_per_thread > 0) {
    const std::uint32_t regs_per_warp =
        AlignUp(resources.regs_per_thread * spec.warp_size, spec.reg_alloc_unit);
    const std::uint32_t warps_by_regs = spec.registers_per_sm / regs_per_warp;
    by_regs = warps_by_regs / warps_per_block;
  }

  // Shared-memory limit: per-block footprint rounded up to the
  // allocation unit, against the configured split.
  std::uint32_t by_smem = UINT32_MAX;
  if (resources.smem_bytes_per_block > 0) {
    const std::uint32_t smem_per_block =
        AlignUp(resources.smem_bytes_per_block, spec.smem_alloc_unit);
    by_smem = spec.SmemBytes(config) / smem_per_block;
  }

  result.active_blocks_per_sm = std::min(
      {by_warps, by_threads, by_blocks, by_regs, by_smem});

  // Identify the binding constraint for diagnostics.
  const std::uint32_t limit = result.active_blocks_per_sm;
  if (limit == by_regs && by_regs != UINT32_MAX) {
    result.limiter = OccupancyLimiter::kRegisters;
  } else if (limit == by_smem && by_smem != UINT32_MAX) {
    result.limiter = OccupancyLimiter::kSharedMemory;
  } else if (limit == by_blocks) {
    result.limiter = OccupancyLimiter::kBlockSlots;
  } else {
    result.limiter = OccupancyLimiter::kWarpSlots;
  }

  result.active_warps_per_sm = result.active_blocks_per_sm * warps_per_block;
  result.active_threads_per_sm =
      result.active_blocks_per_sm * warps_per_block * spec.warp_size;
  result.occupancy = static_cast<double>(result.active_warps_per_sm) /
                     static_cast<double>(spec.max_warps_per_sm);
  return result;
}

OccupancyLevel LevelForBlocks(const GpuSpec& spec, CacheConfig config,
                              std::uint32_t block_dim,
                              std::uint32_t blocks_per_sm) {
  ORION_CHECK(blocks_per_sm > 0);
  const std::uint32_t warps_per_block = WarpsPerBlock(spec, block_dim);
  const std::uint32_t max_blocks =
      std::min({spec.max_warps_per_sm / warps_per_block,
                spec.max_threads_per_sm / (warps_per_block * spec.warp_size),
                spec.max_blocks_per_sm});
  if (blocks_per_sm > max_blocks) {
    throw CompileError(StrFormat(
        "%s: %u blocks of %u threads exceed the SM scheduling limit (%u)",
        spec.name.c_str(), blocks_per_sm, block_dim, max_blocks));
  }

  OccupancyLevel level;
  level.blocks_per_sm = blocks_per_sm;
  level.warps_per_sm = blocks_per_sm * warps_per_block;
  level.occupancy = static_cast<double>(level.warps_per_sm) /
                    static_cast<double>(spec.max_warps_per_sm);

  // Largest register budget: the total warps at this level must fit the
  // register file after warp-granularity rounding.
  const std::uint32_t total_warps = blocks_per_sm * warps_per_block;
  const std::uint32_t regs_per_warp_budget =
      AlignDown(spec.registers_per_sm / total_warps, spec.reg_alloc_unit);
  level.reg_budget_per_thread =
      std::min(regs_per_warp_budget / spec.warp_size, spec.max_regs_per_thread);

  // Largest shared-memory budget per block.
  level.smem_budget_per_block =
      AlignDown(spec.SmemBytes(config) / blocks_per_sm, spec.smem_alloc_unit);
  return level;
}

std::vector<OccupancyLevel> EnumerateOccupancyLevels(const GpuSpec& spec,
                                                     CacheConfig config,
                                                     std::uint32_t block_dim) {
  const std::uint32_t warps_per_block = WarpsPerBlock(spec, block_dim);
  const std::uint32_t max_blocks =
      std::min({spec.max_warps_per_sm / warps_per_block,
                spec.max_threads_per_sm / (warps_per_block * spec.warp_size),
                spec.max_blocks_per_sm});
  std::vector<OccupancyLevel> levels;
  for (std::uint32_t blocks = max_blocks; blocks >= 1; --blocks) {
    OccupancyLevel level = LevelForBlocks(spec, config, block_dim, blocks);
    if (level.reg_budget_per_thread == 0) {
      continue;
    }
    levels.push_back(level);
  }
  return levels;
}

}  // namespace orion::arch
