// Shared kernel-construction helpers for the benchmark suite.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/builder.h"

namespace orion::workloads {

using V = isa::Operand;

struct ThreadCtx {
  V tid;   // thread index within block
  V bid;   // global block index
  V bdim;  // threads per block
  V gtid;  // global thread index = bid * bdim + tid
};

// Emits the standard launch-geometry preamble.
ThreadCtx EmitThreadCtx(isa::FunctionBuilder& fb);

// gtid-indexed byte address: base_bytes + gtid * elem_bytes.
V EmitGtidAddr(isa::FunctionBuilder& fb, const ThreadCtx& ctx,
               std::int64_t base_bytes, std::uint32_t elem_bytes);

// Creates `count` float accumulators initialized from consecutive global
// words, establishing `count` long-lived registers (max-live pressure).
std::vector<V> EmitAccumulators(isa::FunctionBuilder& fb, V addr,
                                std::uint32_t count);

// Folds accumulators into one value and stores it to `addr + offset`.
void EmitReduceAndStore(isa::FunctionBuilder& fb, std::vector<V>& accs,
                        V addr, std::int64_t offset_bytes);

// A generic device helper used to reach the paper's static-call counts:
// computes a * b + c through a float pipeline.  Returns its name.
std::string AddMulAddHelper(isa::ModuleBuilder& mb);

// Emits a call-free burst of `count` simultaneously-live temporaries
// derived from `seed`, folded into one value.  Raises the function's
// register peak *between* call sites, which is what makes compressible-
// stack slot addressing matter: values live across calls must share the
// frame with this window, so their addresses decide how many park moves
// each call needs.
V EmitTempWindow(isa::FunctionBuilder& fb, V seed, std::uint32_t count);

}  // namespace orion::workloads
