// The benchmark suite.
//
// Virtual-ISA reconstructions of the twelve Rodinia / CUDA-SDK programs
// in the paper's Table 2, plus matrixMul (Figure 2) and imageDenoising's
// Figure 1 sweep.  Each is matched to the paper's reported profile —
// register pressure (max-live), static function-call count, and
// user-allocated shared memory — and given the memory-access character
// of its domain (stencil halos, tiled reuse, scattered graph traversal,
// streaming) so the occupancy-performance curve has the right shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "isa/isa.h"
#include "sim/memory.h"

namespace orion::workloads {

struct Table2Row {
  std::uint32_t reg = 0;   // registers needed to avoid spilling
  std::uint32_t func = 0;  // static function calls (after inlining)
  bool smem = false;       // user-allocated shared memory
  const char* domain = "";
};

struct Workload {
  std::string name;
  isa::Module module;  // virtual (pre-allocation)
  std::vector<std::uint32_t> params;
  // Per-iteration parameter overrides (bfs: varying frontier sizes).
  std::vector<std::vector<std::uint32_t>> per_iteration_params;
  std::uint32_t iterations = 12;  // application kernel-loop trip count
  bool can_tune = true;           // Fig. 8 canTune
  std::size_t gmem_words = std::size_t{1} << 20;
  std::uint64_t seed = 0x0410;
  Table2Row table2;

  const std::vector<std::uint32_t>& ParamsFor(std::uint32_t iteration) const {
    if (!per_iteration_params.empty()) {
      return per_iteration_params[iteration % per_iteration_params.size()];
    }
    return params;
  }
};

// The paper's Table 2 benchmarks, in paper order.
const std::vector<std::string>& Table2Names();

// All workloads (Table 2 + "matrixmul").
const std::vector<std::string>& AllNames();

// Builds a workload by name; throws OrionError for unknown names.
Workload MakeWorkload(const std::string& name);

// ---- Semantic self-check (golden final-memory checksums) -----------
//
// Every workload has a golden FNV-1a digest of the final global-memory
// image after interpreting the first kSelfCheckBlocks blocks of its
// *virtual* module (iteration-0 parameters) on freshly seeded memory.
// The digests pin down workload semantics: an edit to a kernel builder
// that changes what the program computes — rather than how fast it runs
// — trips the self-check.  The same digest definition
// (validate::ChecksumMemory) is used by the differential translation
// validator, so golden values are directly comparable with its probes.

// Blocks interpreted by the self-check probe (bounded so the check is
// cheap enough to run for every workload in the test suite).
inline constexpr std::uint32_t kSelfCheckBlocks = 8;

// Global memory as every deterministic Orion run seeds it: gmem_words
// words drawn from Rng(workload.seed) in [1, 1000].
sim::GlobalMemory SeedWorkloadMemory(const Workload& workload);

// Interprets the virtual module on seeded memory and digests the final
// image (the quantity the golden table pins).
std::uint64_t ComputeFinalMemoryChecksum(const Workload& workload);

// The golden digest for a workload; throws OrionError for unknown names.
std::uint64_t GoldenChecksum(const std::string& name);

// Recomputes the digest and compares against the golden table.  Returns
// OK on match; an error Status naming both digests on mismatch.
Status SelfCheck(const std::string& name);

// Individual factories.
Workload MakeCfd();
Workload MakeDxtc();
Workload MakeFdtd3d();
Workload MakeHotspot();
Workload MakeImageDenoising();
Workload MakeParticles();
Workload MakeRecursiveGaussian();
Workload MakeBackprop();
Workload MakeBfs();
Workload MakeGaussian();
Workload MakeSrad();
Workload MakeStreamcluster();
Workload MakeMatrixMul();

}  // namespace orion::workloads
