// dxtc (CUDA SDK) — DXT texture compression, Table 2: Reg 49, Func 11,
// user shared memory.  Loads a pixel block into shared memory, then
// performs a compute-heavy endpoint search over it.
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeDxtc() {
  Workload w;
  w.name = "dxtc";
  w.table2 = {49, 11, true, "Image proc."};
  w.iterations = 32;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/192, /*grid_dim=*/168);
  mb.SetUserSmemBytes(6144);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);
  const std::string muladd = AddMulAddHelper(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);

  // Stage the pixel block into shared memory (two rows per thread).
  const V smem_addr = fb.IMul(ctx.tid, V::Imm(32));
  {
    const V px_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/32);
    const V row0 = fb.LdGlobal(px_addr, 0, /*width=*/4);
    const V row1 = fb.LdGlobal(px_addr, 16, /*width=*/4);
    fb.StShared(smem_addr, 0, row0);
    fb.StShared(smem_addr, 16, row1);
  }
  fb.Bar();

  // Endpoint search state: ~38 long-lived registers.
  const V seed_addr = EmitGtidAddr(fb, ctx, /*base=*/(1 << 21), /*elem=*/4);
  std::vector<V> accs = EmitAccumulators(fb, seed_addr, 38);

  // The endpoint search probes the tile data-dependently: the next
  // probe position comes from the pixel just examined.
  const V chase = fb.Mov(V::Imm(0));
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(10), V::Imm(1));
  {
    const V probe_off = fb.And(fb.IAdd(loop.induction, chase), V::Imm(7));
    const V probe_addr = fb.IMad(probe_off, V::Imm(16), smem_addr);
    const V px = fb.LdShared(probe_addr, 0);
    const V px2 = fb.LdShared(probe_addr, 8);
    isa::Instruction adv;
    adv.op = isa::Opcode::kAnd;
    adv.dsts.push_back(chase);
    adv.srcs = {px, V::Imm(7)};
    fb.Emit(std::move(adv));

    // Error metric with division: 11 static call sites total (one fdiv
    // per iteration position below plus ten muladd sites unrolled).
    const V search = EmitTempWindow(fb, fb.FAdd(px, px2), 10);
    V err = fb.Call(fdiv, {fb.FFma(search, V::FImm(0.1f), px),
                           fb.FAdd(px2, V::FImm(2.0f))}, 1);
    for (int site = 0; site < 7; ++site) {
      err = fb.Call(muladd, {err, accs[site % accs.size()], px}, 1);
      // Heavy ALU refinement between call sites.
      err = fb.FFma(err, V::FImm(0.98f), px2);
      err = fb.FMax(err, V::FImm(-64.0f));
      err = fb.FMin(err, V::FImm(64.0f));
    }
    // Only the hot head of the register state is updated in the loop;
    // the cold tail stays live until the epilogue reduction (spilling
    // it is cheap, as in the real application).
    for (std::size_t i = 0; i < std::min<std::size_t>(8, accs.size()); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {err, V::FImm(0.01f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  // Epilogue endpoint refinement: three call sites at low liveness —
  // together with the in-loop eight this matches Table 2's 11 static
  // calls while varying the compressed-stack heights across sites.
  V total = accs[0];
  for (std::size_t i = 1; i < accs.size(); ++i) {
    total = fb.FAdd(total, accs[i]);
  }
  total = fb.Call(muladd, {total, V::FImm(1.0f / 38.0f), V::FImm(0.0f)}, 1);
  total = fb.Call(muladd, {total, V::FImm(0.75f), total}, 1);
  total = fb.Call(muladd, {total, V::FImm(1.25f), total}, 1);
  fb.StGlobal(seed_addr, /*offset=*/1 << 22, total);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
