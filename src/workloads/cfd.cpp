// cfd (Rodinia) — computational fluid dynamics, Table 2: Reg 63,
// Func 36, no user shared memory.  An Euler-solver flux kernel: per-cell
// neighbor loads with heavy floating-point work including division,
// which SASS implements as a function call — after aggressive inlining
// the paper still counts 36 static call sites.
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeCfd() {
  Workload w;
  w.name = "cfd";
  w.table2 = {63, 36, false, "Fluid dynam."};
  w.iterations = 32;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/192, /*grid_dim=*/168);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);
  const std::string muladd = AddMulAddHelper(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V cell_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/16);

  // Conservative variables: density, momentum, energy + flux state.
  std::vector<V> accs = EmitAccumulators(fb, cell_addr, 52);

  // Neighbor indirection: the next step's addresses depend on the
  // values just loaded (cfd reads neighbor indices, then neighbor data),
  // so a warp cannot overlap its own iterations -- latency hiding must
  // come from occupancy.
  const V chase = fb.Mov(V::Imm(0));
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(3), V::Imm(1));
  {
    // Neighbor contributions: coalesced streaming loads per direction.
    const V step_off = fb.IMul(loop.induction, V::Imm(1 << 18));
    const V nb_addr = fb.IAdd(fb.IAdd(cell_addr, step_off), chase);
    const V nb0 = fb.LdGlobal(nb_addr, 1 << 20);
    const V nb1 = fb.LdGlobal(nb_addr, (1 << 20) + 4096);
    const V nb2 = fb.LdGlobal(nb_addr, (1 << 20) + 8192);
    const V nb3 = fb.LdGlobal(nb_addr, (1 << 20) + 12288);
    isa::Instruction adv;
    adv.op = isa::Opcode::kAnd;
    adv.dsts.push_back(chase);
    adv.srcs = {nb0, V::Imm(0xFFC)};
    fb.Emit(std::move(adv));

    // Flux computation: 8 in-loop call groups of (fdiv + 2 muladd); the
    // remaining 12 sites of the paper's 36 sit in the staged epilogue
    // below, where progressively fewer values are live — giving the
    // compressible stack call sites with very different compressed
    // heights (the Fig. 6 situation).
    // Flux-limiter window: a call-free burst of live temporaries that
    // raises the register peak away from the call sites.
    const V limiter = EmitTempWindow(fb, fb.FAdd(nb0, nb1), 12);
    V pressure = fb.FFma(limiter, V::FImm(1.0f / 12.0f), nb1);
    for (int group = 0; group < 8; ++group) {
      const V velocity =
          fb.Call(fdiv, {accs[group * 4 % accs.size()],
                         fb.FAdd(pressure, V::FImm(1.5f))}, 1);
      const V flux = fb.Call(muladd, {velocity, nb2, pressure}, 1);
      pressure = fb.Call(muladd, {flux, nb3, velocity}, 1);
    }
    const V contrib = fb.FMul(pressure, V::FImm(0.05f));
    // Only the hot head of the register state is updated in the loop;
    // the cold tail stays live until the epilogue reduction (spilling
    // it is cheap, as in the real application).
    for (std::size_t i = 0; i < std::min<std::size_t>(8, accs.size()); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {contrib, V::FImm(0.02f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  // Staged epilogue: fold the state in four chunks, normalizing each
  // partial sum through a call group (fdiv + 2 muladd).  Liveness drops
  // by 13 values per stage, so each of these 12 call sites presents a
  // different compressed-stack height.
  V total = fb.Mov(V::FImm(0.0f));
  for (int stage = 0; stage < 4; ++stage) {
    V partial = accs[stage * 13];
    for (int i = 1; i < 13; ++i) {
      partial = fb.FAdd(partial, accs[stage * 13 + i]);
    }
    const V normalized =
        fb.Call(fdiv, {partial, V::FImm(13.0f)}, 1);
    const V weighted = fb.Call(muladd, {normalized, V::FImm(0.9f), total}, 1);
    total = fb.Call(muladd, {weighted, V::FImm(1.1f), normalized}, 1);
  }
  fb.StGlobal(cell_addr, /*offset=*/1 << 22, total);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
