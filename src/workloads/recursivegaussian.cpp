// recursiveGaussian (CUDA SDK) — recursive Gaussian filter, Table 2:
// Reg 42, Func 21, no user shared memory.  A sequential IIR filter per
// column: each output depends on the previous outputs.  The filter
// stages are fully unrolled (as nvcc unrolls the SDK kernel), leaving
// 21 static call sites: three per stage across seven stages.
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeRecursiveGaussian() {
  Workload w;
  w.name = "recursiveGaussian";
  w.table2 = {42, 21, false, "Numer. analysis"};
  w.iterations = 32;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/192, /*grid_dim=*/168);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);
  const std::string muladd = AddMulAddHelper(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V col_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);

  std::vector<V> accs = EmitAccumulators(fb, col_addr, 30);
  // IIR state: y[n-1], y[n-2] — carried through the unrolled stages.
  V y1 = fb.LdGlobal(col_addr, 4096);
  V y2 = fb.LdGlobal(col_addr, 8192);

  for (int stage = 0; stage < 7; ++stage) {
    const V x = fb.LdGlobal(col_addr, (1 << 20) + (stage << 14));

    // Three call sites per stage x 7 stages = 21 static calls.
    const V a = fb.Call(muladd, {y1, V::FImm(1.6f), x}, 1);
    const V b = fb.Call(muladd, {y2, V::FImm(-0.64f), a}, 1);
    const V y = fb.Call(fdiv, {b, fb.FAdd(y1, V::FImm(2.0f))}, 1);

    // Shift the recursive state: strictly serial dependence.  These are
    // fresh SSA-style values because the stages are unrolled.
    y2 = y1;
    y1 = y;
    for (std::size_t i = 0; i < std::min<std::size_t>(4, accs.size()); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {y, V::FImm(1.0f / 32.0f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }

  EmitReduceAndStore(fb, accs, col_addr, /*offset=*/1 << 22);
  fb.StGlobal(col_addr, (1 << 22) + 4096, y1);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
