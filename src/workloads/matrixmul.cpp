// matrixMul (CUDA SDK) — tiled matrix multiplication, the Figure 2
// benchmark.  Tiles of A and B stage through shared memory; performance
// rises with occupancy and then plateaus from 50% upward (the program
// has little register pressure), which is the paper's motivating case
// for finding the *range* of best occupancies and taking the lowest.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeMatrixMul() {
  Workload w;
  w.name = "matrixmul";
  w.table2 = {18, 0, true, "Linear algebra"};
  w.iterations = 24;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/168);
  mb.SetUserSmemBytes(8192);  // A-tile + B-tile

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V row_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);
  const V a_smem = fb.IMul(ctx.tid, V::Imm(16));
  const V b_smem = fb.IAdd(a_smem, V::Imm(4096));

  std::vector<V> accs = EmitAccumulators(fb, row_addr, 8);

  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(10), V::Imm(1));
  {
    // Stage the next tiles: coalesced streaming loads.
    const V tile_off = fb.IMul(loop.induction, V::Imm(1 << 15));
    const V a_elem = fb.LdGlobal(fb.IAdd(row_addr, tile_off), 1 << 20,
                                 /*width=*/4);
    const V b_elem = fb.LdGlobal(fb.IAdd(row_addr, tile_off),
                                 (1 << 20) + 57344, /*width=*/4);
    fb.StShared(a_smem, 0, a_elem);
    fb.StShared(b_smem, 0, b_elem);
    fb.Bar();

    // Inner product over the staged tiles: compute-dense smem reuse.
    for (int k = 0; k < 4; ++k) {
      const V a = fb.LdShared(a_smem, 4 * k);
      const V b = fb.LdShared(b_smem, 4 * k);
      const V prod = fb.FMul(a, b);
      for (std::size_t i = 0; i < accs.size(); ++i) {
        isa::Instruction fma;
        fma.op = isa::Opcode::kFFma;
        fma.dsts.push_back(accs[i]);
        fma.srcs = {prod, V::FImm(1.0f / 8.0f), accs[i]};
        fb.Emit(std::move(fma));
      }
    }
    fb.Bar();
  }
  fb.LoopEnd(loop);

  EmitReduceAndStore(fb, accs, row_addr, /*offset=*/1 << 22);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
