// srad (Rodinia) — speckle-reducing anisotropic diffusion, Table 2:
// Reg 20, Func 7, user shared memory.  Figure 10: on Tesla C2075 its
// runtime is flat from about one-third occupancy upward — bandwidth
// saturates early — so halving occupancy costs nothing and saves
// resources.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeSrad() {
  Workload w;
  w.name = "srad";
  w.table2 = {20, 7, true, "Imaging app"};
  w.iterations = 16;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/840);
  mb.SetUserSmemBytes(4096);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);
  const std::string muladd = AddMulAddHelper(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V cell_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);
  const V smem_addr = fb.IMul(ctx.tid, V::Imm(16));

  {
    const V tile = fb.LdGlobal(cell_addr, 0, /*width=*/4);
    fb.StShared(smem_addr, 0, tile);
  }
  fb.Bar();

  std::vector<V> accs = EmitAccumulators(fb, cell_addr, 8);

  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(6), V::Imm(1));
  {
    // Streaming image plane loads: the bandwidth load that saturates.
    const V plane_off = fb.IMul(loop.induction, V::Imm(1 << 16));
    const V img0 = fb.LdGlobal(fb.IAdd(cell_addr, plane_off), 1 << 20,
                               /*width=*/1, /*stride=*/4);
    const V img1 = fb.LdGlobal(fb.IAdd(cell_addr, plane_off),
                               (1 << 20) + 57344, /*width=*/1, /*stride=*/4);
    const V img2 = fb.LdGlobal(fb.IAdd(cell_addr, plane_off),
                               (1 << 20) + 114688, /*width=*/1, /*stride=*/2);
    const V img3 = fb.LdGlobal(fb.IAdd(cell_addr, plane_off),
                               (1 << 20) + 172032, /*width=*/1, /*stride=*/2);
    const V north = fb.LdShared(smem_addr, 0);
    const V south = fb.LdShared(smem_addr, 4);

    // Diffusion coefficient with divisions: 7 static call sites total
    // (2 fdiv + 5 muladd, one group of 7 per loop body... the group is
    // emitted once; the loop re-executes the same sites).
    const V grad = fb.FAdd(fb.FAdd(img0, img2),
                           fb.FMul(fb.FAdd(img1, img3), V::FImm(-1.0f)));
    const V q = fb.Call(fdiv, {grad, fb.FAdd(north, V::FImm(2.0f))}, 1);
    const V c = fb.Call(fdiv, {V::FImm(1.0f),
                               fb.FFma(q, q, V::FImm(1.0f))}, 1);
    V update = fb.Call(muladd, {c, grad, south}, 1);
    update = fb.Call(muladd, {update, V::FImm(0.25f), north}, 1);
    update = fb.Call(muladd, {update, V::FImm(0.25f), img0}, 1);
    update = fb.Call(muladd, {update, V::FImm(0.25f), img1}, 1);
    update = fb.Call(muladd, {update, V::FImm(0.125f), grad}, 1);

    for (std::size_t i = 0; i < accs.size(); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {update, V::FImm(0.125f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  EmitReduceAndStore(fb, accs, cell_addr, /*offset=*/1 << 22);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
