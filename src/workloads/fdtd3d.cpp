// FDTD3d (CUDA SDK) — finite-difference time domain, Table 2: Reg 48,
// Func 0, user shared memory.  A 3D stencil: planes stream through
// shared memory while a register queue holds the z-axis neighborhood —
// streaming-bandwidth bound once enough warps are resident.
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeFdtd3d() {
  Workload w;
  w.name = "FDTD3d";
  w.table2 = {48, 0, true, "Numer. analysis"};
  w.iterations = 32;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/168);
  mb.SetUserSmemBytes(5120);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V col_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);
  const V smem_addr = fb.IMul(ctx.tid, V::Imm(20));

  // Register queue for the z-neighborhood: ~36 persistent values.
  std::vector<V> accs = EmitAccumulators(fb, col_addr, 36);

  // The wavefront position depends on the previous plane's values
  // (boundary-adaptive stepping): iterations serialize within a warp.
  const V chase = fb.Mov(V::Imm(0));
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(12), V::Imm(1));
  {
    // Stream the next z-plane: coalesced, no reuse across iterations.
    const V plane_off = fb.IMul(loop.induction, V::Imm(1 << 16));
    const V plane_addr = fb.IAdd(fb.IAdd(col_addr, plane_off), chase);
    const V ahead = fb.LdGlobal(plane_addr, 1 << 20);
    const V ahead2 = fb.LdGlobal(plane_addr, (1 << 20) + 57344);
    isa::Instruction adv;
    adv.op = isa::Opcode::kAnd;
    adv.dsts.push_back(chase);
    adv.srcs = {ahead, V::Imm(0xFFC)};
    fb.Emit(std::move(adv));

    // Share the in-plane halo through shared memory.
    fb.StShared(smem_addr, 0, ahead);
    fb.Bar();
    const V west = fb.LdShared(smem_addr, 4);
    const V east = fb.LdShared(smem_addr, 8);
    fb.Bar();

    // 3D stencil update through the register queue.
    V stencil = fb.FAdd(west, east);
    stencil = fb.FFma(ahead, V::FImm(0.4f), stencil);
    stencil = fb.FFma(ahead2, V::FImm(0.2f), stencil);
    // Only the hot head of the register state is updated in the loop;
    // the cold tail stays live until the epilogue reduction (spilling
    // it is cheap, as in the real application).
    for (std::size_t i = 0; i < std::min<std::size_t>(8, accs.size()); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {stencil, V::FImm(1.0f / 36.0f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  EmitReduceAndStore(fb, accs, col_addr, /*offset=*/1 << 22);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
