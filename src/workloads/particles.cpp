// particles (CUDA SDK) — particle simulation, Table 2: Reg 52, Func 0,
// no user shared memory.  An interaction kernel (distance computations
// with square roots).  The paper notes this benchmark provides no
// tuning iterations and cannot be split, so Orion falls back to the
// compiler's static selection (Section 3.3).
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeParticles() {
  Workload w;
  w.name = "particles";
  w.table2 = {52, 0, false, "Simulation"};
  w.iterations = 1;
  w.can_tune = false;  // single invocation, not splittable
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/192, /*grid_dim=*/168);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V self_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/16);

  // Particle state: position, velocity, force accumulators (~42 live).
  std::vector<V> accs = EmitAccumulators(fb, self_addr, 42);
  const V px = fb.LdGlobal(self_addr, 0);
  const V py = fb.LdGlobal(self_addr, 4);

  // Neighbor-list traversal: each neighbor's cell is found from the
  // previous neighbor's data, serializing the loads within a warp.
  const V chase = fb.Mov(V::Imm(0));
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(16), V::Imm(1));
  {
    // Neighbor particle: streaming, coalesced.
    const V nb_off = fb.IMul(loop.induction, V::Imm(1 << 15));
    const V nb_addr = fb.IAdd(fb.IAdd(self_addr, chase), nb_off);
    const V qx = fb.LdGlobal(nb_addr, 1 << 20);
    const V qy = fb.LdGlobal(nb_addr, (1 << 20) + 4);
    isa::Instruction adv;
    adv.op = isa::Opcode::kAnd;
    adv.dsts.push_back(chase);
    adv.srcs = {qx, V::Imm(0xFFC)};
    fb.Emit(std::move(adv));

    const V dx = fb.FAdd(px, fb.FMul(qx, V::FImm(-1.0f)));
    const V dy = fb.FAdd(py, fb.FMul(qy, V::FImm(-1.0f)));
    const V dist2 = fb.FFma(dx, dx, fb.FMul(dy, dy));
    const V dist = fb.FSqrt(fb.FAdd(dist2, V::FImm(0.01f)));
    const V force = fb.FRcp(fb.FAdd(dist, V::FImm(0.5f)));

    // Only the hot head of the register state is updated in the loop;
    // the cold tail stays live until the epilogue reduction (spilling
    // it is cheap, as in the real application).
    for (std::size_t i = 0; i < std::min<std::size_t>(8, accs.size()); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {force, V::FImm(1.0f / 42.0f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  EmitReduceAndStore(fb, accs, self_addr, /*offset=*/1 << 22);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
