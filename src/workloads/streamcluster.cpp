// streamcluster (Rodinia) — data mining, Table 2: Reg 18, Func 0, no
// user shared memory.  Distance evaluation of streaming points against
// a resident set of cluster centers: Figure 14(b) shows a skewed bell
// with the optimum near 75% occupancy — bandwidth wants more warps,
// center reuse in the cache pushes back at the very top.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeStreamcluster() {
  Workload w;
  w.name = "streamcluster";
  w.table2 = {18, 0, false, "Data mining"};
  w.iterations = 16;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/840);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V point_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);

  const V px = fb.LdGlobal(point_addr, 0);
  const V py = fb.LdGlobal(point_addr, 1 << 19);
  std::vector<V> accs = EmitAccumulators(fb, point_addr, 8);

  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(12), V::Imm(1));
  {
    // Cluster centers: a shared region revisited by every block (cache
    // resident until too many warps compete), plus streaming point data.
    const V center_off = fb.IMul(loop.induction, V::Imm(2048));
    const V center_base = fb.IAdd(fb.IMul(ctx.tid, V::Imm(4)), center_off);
    const V cx = fb.LdGlobal(center_base, 1 << 21);
    const V cy = fb.LdGlobal(center_base, (1 << 21) + 8192);
    const V stream = fb.LdGlobal(
        fb.IAdd(point_addr, fb.IMul(loop.induction, V::Imm(1 << 15))),
        1 << 20);

    const V dx = fb.FAdd(px, fb.FMul(cx, V::FImm(-1.0f)));
    const V dy = fb.FAdd(py, fb.FMul(cy, V::FImm(-1.0f)));
    const V dist = fb.FFma(dx, dx, fb.FMul(dy, dy));
    const V cost = fb.FFma(dist, V::FImm(0.5f), stream);

    for (std::size_t i = 0; i < accs.size(); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {cost, V::FImm(0.125f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  EmitReduceAndStore(fb, accs, point_addr, /*offset=*/1 << 22);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
