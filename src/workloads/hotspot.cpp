// hotspot (Rodinia) — thermal simulation, Table 2: Reg 37, Func 6, user
// shared memory.  A 2D temperature stencil over a shared-memory tile
// with per-cell power dissipation that divides by thermal capacitance.
#include <algorithm>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeHotspot() {
  Workload w;
  w.name = "hotspot";
  w.table2 = {37, 6, true, "Temp. modeling"};
  w.iterations = 32;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/168);
  mb.SetUserSmemBytes(4096);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);
  const std::string muladd = AddMulAddHelper(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V cell_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);
  const V smem_addr = fb.IMul(ctx.tid, V::Imm(16));

  // Stage the temperature tile.
  {
    const V temp = fb.LdGlobal(cell_addr, 0, /*width=*/4);
    fb.StShared(smem_addr, 0, temp);
  }
  fb.Bar();

  std::vector<V> accs = EmitAccumulators(fb, cell_addr, 26);

  // The power trace is read through an index loaded from the grid
  // (adaptive grid refinement): a dependent-load chain per warp.
  const V chase = fb.Mov(V::Imm(0));
  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(8), V::Imm(1));
  {
    const V power = fb.LdGlobal(
        fb.IAdd(fb.IAdd(cell_addr, chase),
                fb.IMul(loop.induction, V::Imm(1 << 15))),
        1 << 20);
    isa::Instruction adv;
    adv.op = isa::Opcode::kAnd;
    adv.dsts.push_back(chase);
    adv.srcs = {power, V::Imm(0xFFC)};
    fb.Emit(std::move(adv));
    const V north = fb.LdShared(smem_addr, 0);
    const V south = fb.LdShared(smem_addr, 4);
    const V west = fb.LdShared(smem_addr, 8);
    const V east = fb.LdShared(smem_addr, 12);

    // Four of the six static call sites: two divisions and two fused
    // updates inside the stencil loop; the last two normalize the
    // result in the epilogue, where far fewer values are live — so the
    // compressible stack sees call sites of very different heights.
    const V window = EmitTempWindow(fb, fb.FAdd(north, west), 10);
    const V denom = fb.FAdd(fb.FAdd(fb.FMul(window, V::FImm(0.1f)), south),
                            V::FImm(4.0f));
    const V delta = fb.Call(fdiv, {power, denom}, 1);
    const V rate = fb.Call(fdiv, {fb.FAdd(west, east), denom}, 1);
    V temp = fb.Call(muladd, {delta, rate, north}, 1);
    temp = fb.Call(muladd, {temp, V::FImm(0.25f), south}, 1);
    temp = fb.FFma(temp, V::FImm(0.25f), west);
    temp = fb.FFma(temp, V::FImm(0.25f), east);

    // Only the hot head of the register state is updated in the loop;
    // the cold tail stays live until the epilogue reduction (spilling
    // it is cheap, as in the real application).
    for (std::size_t i = 0; i < std::min<std::size_t>(8, accs.size()); ++i) {
      isa::Instruction fma;
      fma.op = isa::Opcode::kFFma;
      fma.dsts.push_back(accs[i]);
      fma.srcs = {temp, V::FImm(0.04f), accs[i]};
      fb.Emit(std::move(fma));
    }
  }
  fb.LoopEnd(loop);

  // Epilogue normalization: two more call sites with almost nothing
  // live, giving the compressible stack a short-height call pair.
  V total = accs[0];
  for (std::size_t i = 1; i < accs.size(); ++i) {
    total = fb.FAdd(total, accs[i]);
  }
  total = fb.Call(muladd, {total, V::FImm(1.0f / 26.0f), V::FImm(0.0f)}, 1);
  total = fb.Call(muladd, {total, V::FImm(0.5f), total}, 1);
  fb.StGlobal(cell_addr, /*offset=*/1 << 22, total);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
