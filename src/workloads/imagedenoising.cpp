// imageDenoising (CUDA SDK) — image processing, Table 2: Reg 63, Func 2,
// user shared memory.  The Figure 1 benchmark: on GTX680 its runtime
// forms a valley with the optimum at 50% occupancy — below that too few
// warps hide the window loads' latency, above it the resident blocks'
// window working sets overflow the cache hierarchy.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeImageDenoising() {
  Workload w;
  w.name = "imageDenoising";
  w.table2 = {63, 2, true, "Image proc."};
  w.iterations = 32;
  w.gmem_words = std::size_t{1} << 22;  // 16MB: covers the 8MB output plane

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/168);
  mb.SetUserSmemBytes(2048);  // per-block filter-weight table
  const std::string fdiv = isa::AddFdivIntrinsic(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);

  // Stage the weight table into shared memory (one row per thread).
  const V smem_addr = fb.IMul(ctx.tid, V::Imm(16));
  {
    const V weights_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/16);
    const V weights = fb.LdGlobal(weights_addr, 0, /*width=*/4);
    fb.StShared(smem_addr, 0, weights);
  }
  fb.Bar();

  // Per-block image window base: blocks revisit a ~12KB region.
  const V window_base = [&] {
    const V block_off = fb.IMul(ctx.bid, V::Imm(12288));
    const V lane_off = fb.IMul(ctx.tid, V::Imm(4));
    const V base = fb.IAdd(block_off, lane_off);
    return fb.IAdd(base, V::Imm(1 << 20));  // image plane at 1MB
  }();

  // Long-lived state: ~50 accumulators + addressing => max-live ~63.
  const V acc_addr = EmitGtidAddr(fb, ctx, /*base=*/(1 << 22), /*elem=*/4);
  std::vector<V> accs = EmitAccumulators(fb, acc_addr, 52);

  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(8), V::Imm(1));
  {
    // Window row: revisit the block's region (cache-resident at low
    // block counts, thrashing at high occupancy).
    const V row_off = fb.IMul(loop.induction, V::Imm(1536));
    const V row_addr = fb.IAdd(window_base, row_off);
    const V p0 = fb.LdGlobal(row_addr, 0);
    const V p1 = fb.LdGlobal(row_addr, 1024);
    const V wrow = fb.LdShared(smem_addr, 0);

    // Denoising weight: exp of the normalized difference.  The fast
    // in-loop path uses the reciprocal unit; the two precise divisions
    // (Table 2: Func = 2) happen once, in the normalization epilogue.
    const V diff = fb.FAdd(p0, fb.FMul(p1, V::FImm(-1.0f)));
    const V norm = fb.FMul(diff, fb.FRcp(fb.FAdd(p1, V::FImm(1.0f))));
    const V weight = fb.FExp(fb.FMul(norm, V::FImm(-0.7f)));

    // Accumulate the weighted window into the running sums.  Rows
    // alternate between the two halves of the state, so each iteration
    // touches half of the accumulators.
    const V contrib = fb.FMul(weight, fb.FAdd(p0, wrow));
    const V is_odd = fb.And(loop.induction, V::Imm(1));
    const std::string odd_half = fb.NewLabel("odd");
    const std::string row_done = fb.NewLabel("done");
    fb.Brnz(is_odd, odd_half);
    for (std::size_t i = 0; i < accs.size(); i += 2) {
      isa::Instruction add;
      add.op = isa::Opcode::kFFma;
      add.dsts.push_back(accs[i]);
      add.srcs = {contrib, V::FImm(0.03f), accs[i]};
      fb.Emit(std::move(add));
    }
    fb.Bra(row_done);
    fb.Bind(odd_half);
    for (std::size_t i = 1; i < accs.size(); i += 2) {
      isa::Instruction add;
      add.op = isa::Opcode::kFFma;
      add.dsts.push_back(accs[i]);
      add.srcs = {contrib, V::FImm(0.03f), accs[i]};
      fb.Emit(std::move(add));
    }
    fb.Bind(row_done);
  }
  fb.LoopEnd(loop);

  // Final normalization: both static FDIV call sites live here.
  V total = accs[0];
  for (std::size_t i = 1; i < accs.size(); ++i) {
    total = fb.FAdd(total, accs[i]);
  }
  const V count = fb.FAdd(V::FImm(8.0f), V::FImm(44.0f));
  const V scaled = fb.Call(fdiv, {total, count}, 1);
  const V result = fb.Call(fdiv, {scaled, fb.FAdd(count, V::FImm(1.0f))}, 1);
  const V out_addr = EmitGtidAddr(fb, ctx, /*base=*/(1 << 23), /*elem=*/4);
  fb.StGlobal(out_addr, 0, result);
  fb.Exit();

  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
