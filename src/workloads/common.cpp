#include "workloads/common.h"

namespace orion::workloads {

ThreadCtx EmitThreadCtx(isa::FunctionBuilder& fb) {
  ThreadCtx ctx;
  ctx.tid = fb.S2R(isa::SpecialReg::kTid);
  ctx.bid = fb.S2R(isa::SpecialReg::kBid);
  ctx.bdim = fb.S2R(isa::SpecialReg::kBlockDim);
  ctx.gtid = fb.IMad(ctx.bid, ctx.bdim, ctx.tid);
  return ctx;
}

V EmitGtidAddr(isa::FunctionBuilder& fb, const ThreadCtx& ctx,
               std::int64_t base_bytes, std::uint32_t elem_bytes) {
  const V scaled =
      fb.IMul(ctx.gtid, V::Imm(static_cast<std::int64_t>(elem_bytes)));
  return fb.IAdd(scaled, V::Imm(base_bytes));
}

std::vector<V> EmitAccumulators(isa::FunctionBuilder& fb, V addr,
                                std::uint32_t count) {
  std::vector<V> accs;
  accs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    accs.push_back(fb.LdGlobal(addr, 4 * static_cast<std::int64_t>(i)));
  }
  return accs;
}

void EmitReduceAndStore(isa::FunctionBuilder& fb, std::vector<V>& accs,
                        V addr, std::int64_t offset_bytes) {
  V total = accs[0];
  for (std::size_t i = 1; i < accs.size(); ++i) {
    total = fb.FAdd(total, accs[i]);
  }
  fb.StGlobal(addr, offset_bytes, total);
}

V EmitTempWindow(isa::FunctionBuilder& fb, V seed, std::uint32_t count) {
  std::vector<V> temps;
  temps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    temps.push_back(
        fb.FFma(seed, V::FImm(0.5f + 0.25f * static_cast<float>(i)), seed));
  }
  V folded = temps[0];
  for (std::uint32_t i = 1; i < count; ++i) {
    folded = fb.FAdd(folded, temps[i]);
  }
  return folded;
}

std::string AddMulAddHelper(isa::ModuleBuilder& mb) {
  const std::string name = "__muladd";
  if (mb.module().FindFunction(name) != nullptr) {
    return name;
  }
  std::vector<V> params;
  auto fb = mb.AddFunction(name, {1, 1, 1}, 1, &params);
  const V product = fb.FMul(params[0], params[1]);
  const V scaled = fb.FAdd(product, params[2]);
  const V result = fb.FMax(scaled, V::FImm(-1.0e30f));
  fb.Ret(result);
  return name;
}

}  // namespace orion::workloads
