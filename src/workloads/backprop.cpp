// backprop (Rodinia) — machine learning, Table 2: Reg 21, Func 0, no
// user shared memory.  The paper singles this kernel out: fewer than a
// hundred instructions, no loops or subroutines, runtime on the scale of
// an empty kernel launch — so Orion defaults to the original version
// rather than pay tuning overhead (Section 4.2).
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeBackprop() {
  Workload w;
  w.name = "backprop";
  w.table2 = {21, 0, false, "Machine learning"};
  w.iterations = 1;
  w.can_tune = false;  // too small to tune profitably
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/840);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V unit_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);

  // One layer of the weight update: straight-line, ~21 live values
  // (four hidden units kept in registers simultaneously).
  const V input = fb.LdGlobal(unit_addr, 0);
  const V delta = fb.LdGlobal(unit_addr, 1 << 21);
  const V momentum = fb.LdGlobal(unit_addr, 3 << 20);
  std::vector<V> weights;
  std::vector<V> new_weights;
  std::vector<V> hidden;
  constexpr int kUnits = 6;
  for (int unit = 0; unit < kUnits; ++unit) {
    weights.push_back(fb.LdGlobal(unit_addr, (1 << 20) + unit * 4096));
  }
  const V grad = fb.FMul(input, delta);
  const V step =
      fb.FFma(grad, V::FImm(0.3f), fb.FMul(momentum, V::FImm(0.3f)));
  for (int unit = 0; unit < kUnits; ++unit) {
    new_weights.push_back(fb.FAdd(weights[unit], step));
    hidden.push_back(fb.FFma(new_weights.back(), input, delta));
  }
  V sum = hidden[0];
  for (int unit = 1; unit < kUnits; ++unit) {
    sum = fb.FAdd(sum, hidden[unit]);
  }
  for (int unit = 0; unit < kUnits; ++unit) {
    fb.StGlobal(unit_addr, (1 << 22) + unit * 4096, new_weights[unit]);
  }
  const V squashed = fb.FRcp(
      fb.FAdd(fb.FExp(fb.FMul(sum, V::FImm(-1.0f))), V::FImm(1.0f)));
  fb.StGlobal(unit_addr, (1 << 22) + (1 << 20), squashed);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
