// bfs (Rodinia) — breadth-first search, Table 2: Reg 16, Func 0, no
// user shared memory.  Frontier expansion with data-dependent scattered
// neighbor loads; the frontier size differs every iteration, which is
// exactly why the paper reports the feedback tuner struggles to compare
// consecutive invocations of this benchmark (Section 4.2).
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeBfs() {
  Workload w;
  w.name = "bfs";
  w.table2 = {16, 0, false, "Graph traversal"};
  w.iterations = 16;
  w.gmem_words = std::size_t{1} << 22;
  // Frontier sizes per iteration (param word 0): the BFS wave grows,
  // peaks and shrinks.
  for (const std::uint32_t frontier : {2u, 4u, 8u, 14u, 18u, 16u, 12u, 8u,
                                       6u, 4u, 3u, 2u}) {
    w.per_iteration_params.push_back({frontier});
  }
  w.params = {8};

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/256, /*grid_dim=*/840);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V node_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);
  const V frontier = fb.LdParam(0);

  const V node = fb.LdGlobal(node_addr, 0, /*width=*/1,
                             /*stride=*/isa::kScatterStride);
  V level = fb.LdGlobal(node_addr, 1 << 20);
  const V level_reg = level;
  // Visitation bookkeeping held in registers across the frontier loop
  // (cost array, visited mask, updated count) — Table 2: Reg 16.
  std::vector<V> state;
  for (int i = 0; i < 8; ++i) {
    state.push_back(fb.LdGlobal(node_addr, (3 << 20) + 4 * i));
  }

  auto loop = fb.LoopBegin(V::Imm(0), frontier, V::Imm(1));
  {
    // Edge offset -> neighbor id -> neighbor level: a dependent chain of
    // scattered loads, the latency-bound pattern that wants maximum
    // occupancy.
    const V edge_addr = fb.IMad(node, V::Imm(4), fb.IMul(loop.induction,
                                                         V::Imm(64)));
    const V neighbor = fb.LdGlobal(edge_addr, 1 << 21, /*width=*/1,
                                   /*stride=*/isa::kScatterStride);
    const V nb_masked = fb.And(neighbor, V::Imm((1 << 20) - 1));
    const V nb_addr = fb.IMul(nb_masked, V::Imm(4));
    const V nb_level = fb.LdGlobal(nb_addr, 3 << 20, /*width=*/1,
                                   /*stride=*/isa::kScatterStride);
    const V candidate = fb.IAdd(nb_level, V::Imm(1));
    isa::Instruction min;
    min.op = isa::Opcode::kIMin;
    min.dsts.push_back(level_reg);
    min.srcs = {level_reg, candidate};
    fb.Emit(std::move(min));
  }
  fb.LoopEnd(loop);

  V bookkeeping = state[0];
  for (std::size_t i = 1; i < state.size(); ++i) {
    bookkeeping = fb.IAdd(bookkeeping, state[i]);
  }
  fb.StGlobal(node_addr, 1 << 22, level_reg);
  fb.StGlobal(node_addr, (1 << 22) + 4096, bookkeeping);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
