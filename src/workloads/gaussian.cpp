// gaussian (Rodinia) — Gaussian elimination, Table 2: Reg 11, Func 2, no
// user shared memory.  A small row-update kernel with two division call
// sites; Figure 14(a): essentially insensitive to occupancy, which makes
// it the showcase for resource/energy saving at unchanged performance.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace orion::workloads {

Workload MakeGaussian() {
  Workload w;
  w.name = "gaussian";
  w.table2 = {11, 2, false, "Numer. analysis"};
  w.iterations = 16;
  w.gmem_words = std::size_t{1} << 22;

  isa::ModuleBuilder mb(w.name);
  mb.SetLaunch(/*block_dim=*/192, /*grid_dim=*/840);
  const std::string fdiv = isa::AddFdivIntrinsic(mb);

  auto fb = mb.AddKernel("main");
  const ThreadCtx ctx = EmitThreadCtx(fb);
  const V row_addr = EmitGtidAddr(fb, ctx, /*base=*/0, /*elem=*/4);

  const V a = fb.LdGlobal(row_addr, 0);
  const V pivot = fb.LdGlobal(row_addr, 1 << 18);

  auto loop = fb.LoopBegin(V::Imm(0), V::Imm(6), V::Imm(1));
  {
    const V m = fb.Call(fdiv, {a, fb.FAdd(pivot, V::FImm(1.0f))}, 1);
    // Column access down the matrix: strided across lanes, so each
    // load touches many lines — bandwidth saturates at low occupancy,
    // which is what makes gaussian insensitive to tuning (Fig. 14a).
    const V b = fb.LdGlobal(
        fb.IAdd(row_addr, fb.IMul(loop.induction, V::Imm(1 << 13))), 1 << 20,
        /*width=*/1, /*stride=*/8);
    const V scaled = fb.Call(fdiv, {fb.FMul(m, b), V::FImm(2.0f)}, 1);
    fb.StGlobal(
        fb.IAdd(row_addr, fb.IMul(loop.induction, V::Imm(1 << 13))),
        1 << 22, scaled);
  }
  fb.LoopEnd(loop);
  fb.Exit();
  w.module = mb.Build();
  return w;
}

}  // namespace orion::workloads
