#include "common/error.h"
#include "workloads/workloads.h"

namespace orion::workloads {

const std::vector<std::string>& Table2Names() {
  static const std::vector<std::string> names = {
      "cfd",       "dxtc",      "FDTD3d",   "hotspot",
      "imageDenoising", "particles", "recursiveGaussian",
      "backprop",  "bfs",       "gaussian", "srad",
      "streamcluster",
  };
  return names;
}

const std::vector<std::string>& AllNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = Table2Names();
    all.push_back("matrixmul");
    return all;
  }();
  return names;
}

Workload MakeWorkload(const std::string& name) {
  if (name == "cfd") return MakeCfd();
  if (name == "dxtc") return MakeDxtc();
  if (name == "FDTD3d") return MakeFdtd3d();
  if (name == "hotspot") return MakeHotspot();
  if (name == "imageDenoising") return MakeImageDenoising();
  if (name == "particles") return MakeParticles();
  if (name == "recursiveGaussian") return MakeRecursiveGaussian();
  if (name == "backprop") return MakeBackprop();
  if (name == "bfs") return MakeBfs();
  if (name == "gaussian") return MakeGaussian();
  if (name == "srad") return MakeSrad();
  if (name == "streamcluster") return MakeStreamcluster();
  if (name == "matrixmul") return MakeMatrixMul();
  throw OrionError("unknown workload '" + name + "'");
}

}  // namespace orion::workloads
