// Multi-version kernel binaries.
//
// The Orion compiler emits a small set of candidate kernel versions
// (Section 3.3, ≤5), ordered in the predicted tuning direction; the
// runtime walks them with performance feedback (Section 3.4).  A
// "version" is a compiled module plus a launch-time shared-memory pad:
// decreasing-occupancy versions reuse one binary and differ only in the
// pad, exactly as the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "arch/occupancy.h"
#include "common/status.h"
#include "isa/isa.h"

namespace orion::runtime {

enum class TuneDirection : std::uint8_t { kIncreasing, kDecreasing };

// A candidate occupancy level the compiler attempted but could not turn
// into a version.  Expected infeasibility (register budget below the
// spill floor, padding granularity) is *not* recorded — only faults: a
// level that failed for an unexpected reason is skipped, never fatal,
// and the skip is kept here so health reporting can surface it.
struct CompileSkip {
  std::string level;  // e.g. "blocks=5"
  Status status;
};

struct KernelVersion {
  // Index into MultiVersionBinary::modules.
  std::uint32_t module_index = 0;
  // Launch-time dynamic shared memory pad (bytes per block).
  std::uint32_t smem_padding_bytes = 0;
  // Expected occupancy on the target GPU at compile time.
  arch::OccupancyResult occupancy;
  alloc::AllocStats alloc_stats;
  std::string tag;  // "original", "conservative", "occ=0.50", ...
};

struct MultiVersionBinary {
  std::string kernel_name;
  std::string gpu_name;
  std::vector<isa::Module> modules;     // compiled binaries (deduplicated)
  std::vector<KernelVersion> versions;  // runtime walk order; [0] runs first
  // Fail-safe candidates in the *opposite* tuning direction (Section
  // 3.3): probed by the runtime only when the primary walk ends back at
  // the original version, i.e. when the compile-time direction was
  // wrong.  Indices refer to this list, offset by versions.size() in
  // the tuner's numbering.
  std::vector<KernelVersion> failsafe;
  // Occupancy levels skipped because compilation *faulted* (not merely
  // infeasible).  Empty in a healthy compile.
  std::vector<CompileSkip> compile_skips;
  TuneDirection direction = TuneDirection::kIncreasing;
  // False when the application cannot provide tuning iterations (no
  // kernel loop and too few threads to split): the compiler's static
  // selection is used instead (Section 3.3).
  bool can_tune = true;
  // Index into `versions` chosen by the static model when !can_tune.
  std::uint32_t static_choice = 0;
  // The paper's max-live metric that drove the direction decision.
  std::uint32_t max_live_words = 0;

  const isa::Module& ModuleOf(const KernelVersion& version) const {
    return modules[version.module_index];
  }

  // Unified numbering over primary + fail-safe candidates.
  std::size_t NumCandidates() const {
    return versions.size() + failsafe.size();
  }
  const KernelVersion& Candidate(std::size_t index) const {
    return index < versions.size() ? versions[index]
                                   : failsafe[index - versions.size()];
  }
};

}  // namespace orion::runtime
