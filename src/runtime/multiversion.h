// Multi-version kernel binaries.
//
// The Orion compiler emits a small set of candidate kernel versions
// (Section 3.3, ≤5), ordered in the predicted tuning direction; the
// runtime walks them with performance feedback (Section 3.4).  A
// "version" is a compiled module plus a launch-time shared-memory pad:
// decreasing-occupancy versions reuse one binary and differ only in the
// pad, exactly as the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "arch/occupancy.h"
#include "common/status.h"
#include "isa/isa.h"

namespace orion::runtime {

enum class TuneDirection : std::uint8_t { kIncreasing, kDecreasing };

// Why a candidate occupancy level was skipped at compile time.  Derived
// from the skip's StatusCode so health reporting can aggregate by cause
// instead of collapsing everything into one "compile_skips" bucket.
enum class SkipReason : std::uint8_t {
  kCompileFault = 0,  // allocation/compilation faulted unexpectedly
  kDecodeFault,       // the candidate binary failed to decode
  kValidationFault,   // differential validation rejected the candidate
  kOther,             // any other non-quiet status
};

const char* SkipReasonName(SkipReason reason);
SkipReason SkipReasonFromStatus(StatusCode code);

// A candidate occupancy level the compiler attempted but could not turn
// into a version.  Expected infeasibility (register budget below the
// spill floor, padding granularity) is *not* recorded — only faults: a
// level that failed for an unexpected reason is skipped, never fatal,
// and the skip is kept here so health reporting can surface it.
struct CompileSkip {
  std::string level;  // e.g. "blocks=5"
  Status status;
  SkipReason reason = SkipReason::kCompileFault;
};

// Outcome of differential translation validation (src/validate) for one
// kernel version.  The default kNotValidated keeps the pipeline
// bit-identical when the validation gate is off.
enum class ValidationVerdict : std::uint8_t {
  kNotValidated = 0,  // gate off (or the module was never co-simulated)
  kExempt,            // version 0, or a padded variant sharing its binary
  kPass,              // co-simulation matched on every probe
  // Failing verdicts (ValidationFailed(...) is true from here on).
  kVerifyFault,     // candidate failed structural verification
  kExecutionFault,  // co-simulation of the candidate faulted
  kMemoryMismatch,  // final global-memory images differ
  kExitMismatch,    // architectural exit state differs
};

const char* ValidationVerdictName(ValidationVerdict verdict);

inline bool ValidationFailed(ValidationVerdict verdict) {
  return verdict >= ValidationVerdict::kVerifyFault;
}

struct ValidationRecord {
  ValidationVerdict verdict = ValidationVerdict::kNotValidated;
  std::uint32_t probes_run = 0;
  std::string detail;  // first mismatch / fault message; empty on pass

  bool Failed() const { return ValidationFailed(verdict); }
};

struct KernelVersion {
  // Index into MultiVersionBinary::modules.
  std::uint32_t module_index = 0;
  // Launch-time dynamic shared memory pad (bytes per block).
  std::uint32_t smem_padding_bytes = 0;
  // Expected occupancy on the target GPU at compile time.
  arch::OccupancyResult occupancy;
  alloc::AllocStats alloc_stats;
  std::string tag;  // "original", "conservative", "occ=0.50", ...
  // Stamped by the validation gate (src/validate) when enabled; a
  // failing verdict means the version is quarantined at runtime and the
  // Fig. 9 walk never enters it.
  ValidationRecord validation;
};

struct MultiVersionBinary {
  std::string kernel_name;
  std::string gpu_name;
  std::vector<isa::Module> modules;     // compiled binaries (deduplicated)
  std::vector<KernelVersion> versions;  // runtime walk order; [0] runs first
  // Fail-safe candidates in the *opposite* tuning direction (Section
  // 3.3): probed by the runtime only when the primary walk ends back at
  // the original version, i.e. when the compile-time direction was
  // wrong.  Indices refer to this list, offset by versions.size() in
  // the tuner's numbering.
  std::vector<KernelVersion> failsafe;
  // Occupancy levels skipped because compilation *faulted* (not merely
  // infeasible).  Empty in a healthy compile.
  std::vector<CompileSkip> compile_skips;
  TuneDirection direction = TuneDirection::kIncreasing;
  // False when the application cannot provide tuning iterations (no
  // kernel loop and too few threads to split): the compiler's static
  // selection is used instead (Section 3.3).
  bool can_tune = true;
  // Index into `versions` chosen by the static model when !can_tune.
  std::uint32_t static_choice = 0;
  // The paper's max-live metric that drove the direction decision.
  std::uint32_t max_live_words = 0;

  const isa::Module& ModuleOf(const KernelVersion& version) const {
    return modules[version.module_index];
  }

  // Unified numbering over primary + fail-safe candidates.
  std::size_t NumCandidates() const {
    return versions.size() + failsafe.size();
  }
  const KernelVersion& Candidate(std::size_t index) const {
    return index < versions.size() ? versions[index]
                                   : failsafe[index - versions.size()];
  }
  KernelVersion& Candidate(std::size_t index) {
    return index < versions.size() ? versions[index]
                                   : failsafe[index - versions.size()];
  }

  // True when any candidate carries a failing validation verdict.
  bool AnyValidationFailures() const;

  // "validation=[0:exempt 1:pass 2:memory-mismatch]" over the unified
  // candidate numbering; empty when nothing was validated.
  std::string ValidationSummary() const;
};

}  // namespace orion::runtime
