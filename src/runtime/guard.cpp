#include "runtime/guard.h"

#include <utility>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/log.h"
#include "common/strings.h"
#include "runtime/run_journal.h"
#include "telemetry/telemetry.h"

namespace orion::runtime {

namespace {

// RAII cycle-cap scope: the guard owns the watchdog budget; the
// simulator's previous cap (normally 0) is restored on every exit path.
class ScopedCycleCap {
 public:
  ScopedCycleCap(sim::GpuSimulator* sim, std::uint64_t cap)
      : sim_(sim), saved_(sim->cycle_cap()) {
    sim_->set_cycle_cap(cap);
  }
  ~ScopedCycleCap() { sim_->set_cycle_cap(saved_); }
  ScopedCycleCap(const ScopedCycleCap&) = delete;
  ScopedCycleCap& operator=(const ScopedCycleCap&) = delete;

 private:
  sim::GpuSimulator* sim_;
  std::uint64_t saved_;
};

// The watchdog's LaunchError carries this prefix (see
// sim/machine_common.h) — it distinguishes a budget expiry from other
// launch failures, which matters because hangs are not retryable.
bool IsWatchdogError(const char* what) {
  return std::string_view(what).starts_with("watchdog:");
}

// The quarantine reason a terminal fault implies, should it cross the
// threshold.
QuarantineReason ReasonFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kWatchdogExpired:
      return QuarantineReason::kWatchdog;
    case StatusCode::kLaunchFault:
      return QuarantineReason::kLaunch;
    case StatusCode::kDecodeFault:
      return QuarantineReason::kDecode;
    default:
      return QuarantineReason::kFaults;
  }
}

}  // namespace

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kFaults:
      return "faults";
    case QuarantineReason::kWatchdog:
      return "watchdog";
    case QuarantineReason::kLaunch:
      return "launch";
    case QuarantineReason::kDecode:
      return "decode";
    case QuarantineReason::kValidation:
      return "validation";
  }
  return "?";
}

std::string HealthReport::ToString() const {
  std::string out = StrFormat(
      "launches=%llu/%llu ok, transients=%llu (retries=%llu, backoff=%.2fms), "
      "watchdog_trips=%llu, faulted_iterations=%llu",
      static_cast<unsigned long long>(launches_succeeded),
      static_cast<unsigned long long>(launches_attempted),
      static_cast<unsigned long long>(transient_faults),
      static_cast<unsigned long long>(retries), backoff_ms,
      static_cast<unsigned long long>(watchdog_trips),
      static_cast<unsigned long long>(faulted_iterations));
  if (!quarantined.empty()) {
    out += ", quarantined=[";
    for (std::size_t i = 0; i < quarantined.size(); ++i) {
      out += StrFormat(i == 0 ? "%u:%s" : " %u:%s", quarantined[i].version,
                       QuarantineReasonName(quarantined[i].reason));
    }
    out += "]";
  }
  if (fallback_taken) {
    out += ", fell back to original";
  }
  return out;
}

LaunchGuard::LaunchGuard(const MultiVersionBinary* binary,
                         sim::GpuSimulator* sim, const GuardOptions& options,
                         RunJournal* journal)
    : binary_(binary), sim_(sim), options_(options), journal_(journal),
      fault_counts_(binary->NumCandidates(), 0) {
  ORION_CHECK_MSG(options_.max_attempts >= 1, "max_attempts must be >= 1");
  // Compile-time validation verdicts arrive as pre-quarantines: a
  // rejected candidate must never be launched, not even once.  Version
  // 0 stays launchable no matter what (fallback of last resort).
  for (std::size_t i = 1; i < binary->NumCandidates(); ++i) {
    if (binary->Candidate(i).validation.Failed()) {
      health_.quarantined.push_back(
          {static_cast<std::uint32_t>(i), QuarantineReason::kValidation});
      ORION_LOG(WARN) << "candidate " << i
                      << " pre-quarantined by translation validation: "
                      << ValidationVerdictName(
                             binary->Candidate(i).validation.verdict);
      ORION_COUNTER_ADD("guard.validation_quarantines", 1);
    }
  }
  // A resumed session overrides the freshly built state wholesale: its
  // last snapshot already includes the validation pre-quarantines above
  // (they were taken identically before the crash), plus everything the
  // interrupted run learned — quarantines are never re-tried, fault
  // counts keep their progress toward thresholds.
  if (journal_ != nullptr) {
    std::vector<std::uint32_t> restored_counts;
    HealthReport restored;
    if (journal_->RestoreGuard(&restored, &restored_counts)) {
      health_ = std::move(restored);
      restored_counts.resize(binary->NumCandidates(), 0);
      fault_counts_ = std::move(restored_counts);
      ORION_LOG(INFO) << "guard state restored from session journal: "
                      << health_.quarantined.size() << " quarantined, "
                      << health_.fault_log.size() << " logged faults";
    }
  }
}

const Quarantine* LaunchGuard::FindQuarantine(
    std::uint32_t version_index) const {
  for (const Quarantine& q : health_.quarantined) {
    if (q.version == version_index) {
      return &q;
    }
  }
  return nullptr;
}

bool LaunchGuard::Quarantined(std::uint32_t version_index) const {
  return FindQuarantine(version_index) != nullptr;
}

void LaunchGuard::NoteFallback() {
  if (!health_.fallback_taken) {
    ORION_LOG(WARN) << "tuned run fell back to the original version";
    ORION_COUNTER_ADD("guard.fallbacks", 1);
    telemetry::Instant("guard", "guard.fallback");
  }
  health_.fallback_taken = true;
}

void LaunchGuard::RecordFault(std::uint32_t iteration, std::uint32_t version,
                              const Status& status) {
  ++health_.faulted_iterations;
  health_.fault_log.push_back({iteration, version, status});
  if (journal_ != nullptr) {
    journal_->OnFault(iteration, version, status, /*counted=*/true);
  }
  ORION_COUNTER_ADD("guard.faulted_iterations", 1);
  if (telemetry::Enabled()) {
    telemetry::Instant("guard", "guard.fault",
                       {telemetry::Arg("iter", iteration),
                        telemetry::Arg("version", version),
                        telemetry::Arg("status", status.ToString())});
  }
  if (version < fault_counts_.size()) {
    ++fault_counts_[version];
    // The original (version 0) is the fallback of last resort and is
    // never quarantined.
    if (version != 0 && !Quarantined(version) &&
        fault_counts_[version] >= options_.quarantine_threshold) {
      health_.quarantined.push_back(
          {version, ReasonFromStatus(status.code())});
      if (journal_ != nullptr) {
        journal_->OnQuarantine(health_.quarantined.back());
      }
      ORION_LOG(WARN) << "candidate " << version << " quarantined after "
                      << fault_counts_[version] << " faults";
      ORION_COUNTER_ADD("guard.quarantines", 1);
      if (telemetry::Enabled()) {
        telemetry::Instant("guard", "guard.quarantine",
                           {telemetry::Arg("version", version),
                            telemetry::Arg("faults", fault_counts_[version])});
      }
    }
  }
}

GuardedLaunch LaunchGuard::Launch(std::uint32_t version_index,
                                  sim::GlobalMemory* gmem,
                                  const std::vector<std::uint32_t>& params,
                                  std::uint32_t first_block,
                                  std::uint32_t num_blocks,
                                  std::uint32_t iteration) {
  GuardedLaunch out;
  if (const Quarantine* quarantine = FindQuarantine(version_index)) {
    out.status = Status::Error(
        StatusCode::kQuarantined,
        quarantine->reason == QuarantineReason::kValidation
            ? StrFormat("candidate %u is quarantined by translation validation",
                        version_index)
            : StrFormat("candidate %u is quarantined (%s) after %u faults",
                        version_index,
                        QuarantineReasonName(quarantine->reason),
                        fault_counts_[version_index]));
    // Quarantine hits are logged but do not re-count toward thresholds.
    health_.fault_log.push_back({iteration, version_index, out.status});
    ++health_.faulted_iterations;
    if (journal_ != nullptr) {
      journal_->OnFault(iteration, version_index, out.status,
                        /*counted=*/false);
    }
    ORION_COUNTER_ADD("guard.quarantine_hits", 1);
    ORION_LOG(INFO) << "iteration " << iteration
                    << " refused: " << out.status.message();
    return out;
  }

  const KernelVersion& version = binary_->Candidate(version_index);
  const isa::Module& module = binary_->ModuleOf(version);
  FaultInjector* injector = FaultInjector::Current();
  Status last_error;

  for (std::uint32_t attempt = 1; attempt <= options_.max_attempts;
       ++attempt) {
    out.attempts = attempt;
    ++health_.launches_attempted;
    ORION_COUNTER_ADD("guard.launches_attempted", 1);

    // Injected launch faults fire before the simulator runs, the way a
    // real driver rejects or loses a launch.
    if (injector != nullptr) {
      switch (injector->NextLaunchFault()) {
        case LaunchFault::kHang: {
          // A hung launch is terminated by the watchdog after its full
          // cycle budget; the guard models that synthetically (the
          // simulator never runs) and charges the budget as wall time.
          ++health_.watchdog_trips;
          ORION_COUNTER_ADD("guard.watchdog_trips", 1);
          ORION_LOG(WARN) << "watchdog terminated candidate "
                          << version_index << " (injected hang)";
          out.measured_ms =
              static_cast<double>(options_.watchdog_cycle_budget) /
              (sim_->spec().timing.core_clock_mhz * 1000.0);
          last_error = Status::Error(
              StatusCode::kWatchdogExpired,
              StrFormat("injected hang terminated after %llu-cycle budget",
                        static_cast<unsigned long long>(
                            options_.watchdog_cycle_budget)));
          out.status = last_error.WithContext(
              StrFormat("launch candidate %u", version_index));
          RecordFault(iteration, version_index, out.status);
          return out;  // hangs are not retryable
        }
        case LaunchFault::kTransient: {
          ++health_.transient_faults;
          ORION_COUNTER_ADD("guard.transient_faults", 1);
          last_error = Status::Error(
              StatusCode::kLaunchFault,
              StrFormat("injected transient launch failure (attempt %u)",
                        attempt));
          if (attempt < options_.max_attempts) {
            // Exponential backoff before the retry, charged to the
            // health report (simulated time, not iteration runtime).
            ++health_.retries;
            health_.backoff_ms +=
                options_.backoff_base_ms * static_cast<double>(1u << (attempt - 1));
            ORION_COUNTER_ADD("guard.retries", 1);
            ORION_LOG(INFO) << "transient launch fault on candidate "
                            << version_index << ", retrying (attempt "
                            << attempt + 1 << "/" << options_.max_attempts
                            << ")";
            if (telemetry::Enabled()) {
              telemetry::Instant("guard", "guard.retry",
                                 {telemetry::Arg("iter", iteration),
                                  telemetry::Arg("version", version_index),
                                  telemetry::Arg("attempt", attempt)});
            }
            continue;
          }
          out.status = last_error.WithContext(
              StrFormat("launch candidate %u: retries exhausted",
                        version_index));
          RecordFault(iteration, version_index, out.status);
          return out;
        }
        case LaunchFault::kNone:
          break;
      }
    }

    try {
      const ScopedCycleCap cap(sim_, options_.watchdog_cycle_budget);
      out.result = sim_->Launch(module, gmem, params, first_block, num_blocks,
                                version.smem_padding_bytes);
      out.measured_ms = injector != nullptr
                            ? injector->PerturbMeasurement(out.result.ms)
                            : out.result.ms;
      out.status = Status::Ok();
      ++health_.launches_succeeded;
      ORION_COUNTER_ADD("guard.launches_succeeded", 1);
      ORION_HISTOGRAM_RECORD("guard.probe_latency_ms", out.measured_ms);
      ORION_HISTOGRAM_RECORD("guard.retries_per_launch",
                             static_cast<double>(attempt - 1));
      return out;
    } catch (const DecodeError& e) {
      out.status =
          Status::Error(StatusCode::kDecodeFault, e.what())
              .WithContext(StrFormat("launch candidate %u", version_index));
      RecordFault(iteration, version_index, out.status);
      return out;  // a corrupt binary does not get better on retry
    } catch (const LaunchError& e) {
      if (IsWatchdogError(e.what())) {
        ++health_.watchdog_trips;
        ORION_COUNTER_ADD("guard.watchdog_trips", 1);
        ORION_LOG(WARN) << "watchdog terminated candidate " << version_index
                        << ": " << e.what();
        out.measured_ms =
            static_cast<double>(options_.watchdog_cycle_budget) /
            (sim_->spec().timing.core_clock_mhz * 1000.0);
        out.status =
            Status::Error(StatusCode::kWatchdogExpired, e.what())
                .WithContext(StrFormat("launch candidate %u", version_index));
        RecordFault(iteration, version_index, out.status);
        return out;  // a runaway launch is not retryable
      }
      // Genuine (non-injected) launch failures are treated as
      // persistent: the level is unlaunchable, retrying cannot help.
      out.status =
          Status::Error(StatusCode::kLaunchFault, e.what())
              .WithContext(StrFormat("launch candidate %u", version_index));
      RecordFault(iteration, version_index, out.status);
      return out;
    }
  }

  // Unreachable: every loop path returns or continues, and the last
  // attempt always returns.  Kept for -Wreturn-type.
  out.status = last_error;
  RecordFault(iteration, version_index, out.status);
  return out;
}

}  // namespace orion::runtime
