// Abstract journaling hooks for a tuned run.
//
// The runtime (TunedLauncher + LaunchGuard) calls these at every
// decision point; the persistence layer (persist::Session) implements
// them against the write-ahead session journal.  The indirection keeps
// the dependency one-way — runtime knows nothing about files — while
// letting a resumed run replay recorded probes instead of re-measuring
// and restore the guard's quarantine state instead of re-learning it.
//
// Contract for implementations:
//   * ProbeIntent is appended *before* the launch it announces
//     (write-ahead), ProbeResult after the measurement, carrying a full
//     guard-state snapshot so recovery needs no event re-counting;
//   * ReplayIteration either returns false (nothing recorded — run
//     live), fills the record (replay — the caller must not launch),
//     or throws on a recorded version that contradicts the tuner's
//     deterministic walk (corrupt history must never be resumed over);
//   * all hooks may be called after a journal write failure — the
//     implementation degrades to no-ops rather than failing the run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "runtime/guard.h"
#include "runtime/launcher.h"

namespace orion::runtime {

class RunJournal {
 public:
  // Passed as `expected_version` once the walk has settled: the
  // recorded version is trusted as-is (post-settle quarantine growth
  // legitimately changes what the tuner would pick today).
  static constexpr std::uint32_t kAnyVersion = 0xffffffffu;

  virtual ~RunJournal() = default;

  // True when iteration `iteration` was already measured by a previous
  // run of this session: `*record` is filled from the journal and the
  // caller must feed it to the tuner instead of launching.  While the
  // walk is live (`expected_version != kAnyVersion`) the recorded
  // version is checked against the tuner's choice — a mismatch means
  // the journal belongs to a different history and the implementation
  // throws.
  virtual bool ReplayIteration(std::uint32_t iteration,
                               std::uint32_t expected_version,
                               IterationRecord* record) = 0;

  // Write-ahead announcement: iteration `iteration` is about to launch
  // candidate `version`.
  virtual void ProbeIntent(std::uint32_t iteration, std::uint32_t version) = 0;

  // Durable measurement: the iteration's record plus a snapshot of the
  // guard state *after* it (health aggregates, quarantine list,
  // per-candidate fault counts).
  virtual void ProbeResult(std::uint32_t iteration,
                           const IterationRecord& record,
                           const HealthReport& health,
                           const std::vector<std::uint32_t>& fault_counts) = 0;

  // A terminal fault the guard recorded.  `counted` is false for
  // quarantine hits (logged but not counted toward thresholds).
  virtual void OnFault(std::uint32_t iteration, std::uint32_t version,
                       const Status& status, bool counted) = 0;

  // A candidate crossed the quarantine threshold (or was pre-quarantined
  // by validation at guard construction).
  virtual void OnQuarantine(const Quarantine& quarantine) = 0;

  // Restores guard state from the latest snapshot.  Returns false when
  // the session has no snapshot (fresh run) — the guard keeps the state
  // it built in its constructor.
  virtual bool RestoreGuard(HealthReport* health,
                            std::vector<std::uint32_t>* fault_counts) = 0;

  // The run completed: the locked version and steady stats.
  virtual void LockDecision(const TunedRunResult& result) = 0;
};

}  // namespace orion::runtime
