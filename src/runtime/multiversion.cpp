#include "runtime/multiversion.h"

#include "common/strings.h"

namespace orion::runtime {

const char* SkipReasonName(SkipReason reason) {
  switch (reason) {
    case SkipReason::kCompileFault:
      return "compile-fault";
    case SkipReason::kDecodeFault:
      return "decode-fault";
    case SkipReason::kValidationFault:
      return "validation-fault";
    case SkipReason::kOther:
      return "other";
  }
  return "?";
}

SkipReason SkipReasonFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kCompileFault:
      return SkipReason::kCompileFault;
    case StatusCode::kDecodeFault:
      return SkipReason::kDecodeFault;
    case StatusCode::kValidationFailed:
      return SkipReason::kValidationFault;
    default:
      return SkipReason::kOther;
  }
}

const char* ValidationVerdictName(ValidationVerdict verdict) {
  switch (verdict) {
    case ValidationVerdict::kNotValidated:
      return "not-validated";
    case ValidationVerdict::kExempt:
      return "exempt";
    case ValidationVerdict::kPass:
      return "pass";
    case ValidationVerdict::kVerifyFault:
      return "verify-fault";
    case ValidationVerdict::kExecutionFault:
      return "execution-fault";
    case ValidationVerdict::kMemoryMismatch:
      return "memory-mismatch";
    case ValidationVerdict::kExitMismatch:
      return "exit-mismatch";
  }
  return "?";
}

bool MultiVersionBinary::AnyValidationFailures() const {
  for (std::size_t i = 0; i < NumCandidates(); ++i) {
    if (Candidate(i).validation.Failed()) {
      return true;
    }
  }
  return false;
}

std::string MultiVersionBinary::ValidationSummary() const {
  bool any = false;
  for (std::size_t i = 0; i < NumCandidates(); ++i) {
    any |= Candidate(i).validation.verdict != ValidationVerdict::kNotValidated;
  }
  if (!any) {
    return "";
  }
  std::string out = "validation=[";
  for (std::size_t i = 0; i < NumCandidates(); ++i) {
    out += StrFormat(i == 0 ? "%zu:%s" : " %zu:%s", i,
                     ValidationVerdictName(Candidate(i).validation.verdict));
  }
  out += "]";
  return out;
}

}  // namespace orion::runtime
