// Runtime occupancy adaptation — the Figure 9 state machine.
//
// In a loop that invokes the kernel, the first iteration runs the
// original version; each subsequent iteration runs the next candidate in
// the compile-time tuning direction until performance degrades, then the
// tuner locks the previous (best) version.  In the decreasing direction
// a small slowdown (2%) is tolerated, because lower occupancy saves
// registers and energy even at equal performance (Sections 3.4, 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/multiversion.h"

namespace orion::runtime {

// The Fig. 9 walk, replayed offline over pre-measured candidate
// runtimes (see DynamicTuner::PlanFromSweep).
struct TunerPlan {
  std::uint32_t final_version = 0;
  std::uint32_t iterations_to_settle = 0;
  // Candidate index probed at each iteration until the tuner settled;
  // iterations beyond the walk run final_version.
  std::vector<std::uint32_t> visits;
};

class DynamicTuner {
 public:
  explicit DynamicTuner(const MultiVersionBinary* binary,
                        double slowdown_tolerance = 0.02);

  // Which version should run this iteration.
  std::uint32_t NextVersion();

  // Feedback for the version returned by the last NextVersion() call.
  void ReportRuntime(double ms);

  bool Finalized() const { return finalized_; }
  std::uint32_t FinalVersion() const { return final_version_; }

  // Iterations consumed before the tuner settled (paper: "less than
  // three iterations on average").
  std::uint32_t IterationsToSettle() const { return iterations_to_settle_; }

  // True while the tuner probes the opposite-direction fail-safe
  // candidates (Section 3.3: the compile-time direction was wrong).
  bool InFailsafe() const { return failsafe_; }

  // Replays the feedback walk over runtimes measured up front (one per
  // candidate in the binary's unified numbering, e.g. from a
  // sim::ParallelSweep).  The returned plan visits exactly the versions
  // the live walk would, provided each candidate's runtime does not
  // depend on launch order.
  static TunerPlan PlanFromSweep(const MultiVersionBinary& binary,
                                 const std::vector<double>& candidate_ms,
                                 double slowdown_tolerance = 0.02);

 private:
  void Finalize(std::uint32_t version);
  void EnterFailsafe();

  const MultiVersionBinary* binary_;
  const double tolerance_;
  bool finalized_ = false;
  bool failsafe_ = false;  // probing the opposite direction
  std::uint32_t final_version_ = 0;
  std::uint32_t cursor_ = 0;        // index of the version last handed out
  bool first_ = true;
  double prev_ms_ = 0.0;
  std::uint32_t prev_version_ = 0;
  std::uint32_t iteration_ = 0;
  std::uint32_t iterations_to_settle_ = 0;
};

}  // namespace orion::runtime
