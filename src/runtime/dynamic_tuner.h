// Runtime occupancy adaptation — the Figure 9 state machine.
//
// In a loop that invokes the kernel, the first iteration runs the
// original version; each subsequent iteration runs the next candidate in
// the compile-time tuning direction until performance degrades, then the
// tuner locks the previous (best) version.  In the decreasing direction
// a small slowdown (2%) is tolerated, because lower occupancy saves
// registers and energy even at equal performance (Sections 3.4, 4.2).
//
// Robustness extensions (all default-off, bit-identical when unused):
//   * median-of-k probing — each candidate is measured `probe_count`
//     times and the walk decides on the median, so one noisy sample
//     cannot derail the walk;
//   * hysteresis — an extra multiplicative margin a candidate must
//     exceed before it counts as "worse", damping borderline flips
//     under measurement noise;
//   * ReportFault — a candidate whose launch faulted is skipped (never
//     compared), and a faulted baseline degrades to "any working
//     candidate wins".
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/multiversion.h"

namespace orion::runtime {

// Knobs for the feedback walk.  The defaults reproduce the paper's
// Fig. 9 behaviour exactly (single probe, no hysteresis, 2% downward
// tolerance) and are bit-identical to the pre-options tuner.
struct TunerOptions {
  // Tolerated slowdown when walking *down* in occupancy (paper: 2%).
  double slowdown_tolerance = 0.02;
  // Probes per candidate; the walk decides on the median of k samples.
  std::uint32_t probe_count = 1;
  // Extra multiplicative margin before a candidate counts as worse.
  double hysteresis = 0.0;
};

// The Fig. 9 walk, replayed offline over pre-measured candidate
// runtimes (see DynamicTuner::PlanFromSweep).
struct TunerPlan {
  std::uint32_t final_version = 0;
  std::uint32_t iterations_to_settle = 0;
  // Candidate index probed at each iteration until the tuner settled;
  // iterations beyond the walk run final_version.
  std::vector<std::uint32_t> visits;
};

// What the walk did with the most recent piece of feedback —
// telemetry only, never consulted by the walk itself.
enum class TunerDecision : std::uint8_t {
  kNone = 0,    // no feedback yet
  kBaseline,    // original measured, walk begins
  kProbe,       // mid median-of-k probe, awaiting more samples
  kAdvance,     // candidate kept, walk moves to the next occupancy
  kLock,        // walk over: settled (retreat-or-end)
  kFailsafe,    // primary direction exhausted, probing fail-safes
  kFaultSkip,   // candidate faulted and was skipped
  kSteady,      // post-settle feedback (documented no-op)
};

const char* TunerDecisionName(TunerDecision decision);

class DynamicTuner {
 public:
  explicit DynamicTuner(const MultiVersionBinary* binary,
                        double slowdown_tolerance = 0.02);
  DynamicTuner(const MultiVersionBinary* binary, const TunerOptions& options);

  // Which version should run this iteration.  With probe_count > 1 the
  // same candidate is handed out until its k samples are in.
  std::uint32_t NextVersion();

  // Feedback for the version returned by the last NextVersion() call.
  // Calling before the first NextVersion() is a programming error
  // (ORION_CHECK).  Calling after the tuner has settled is a documented
  // no-op: steady-state launches need no feedback, so launch loops may
  // keep reporting unconditionally.
  void ReportRuntime(double ms);

  // The version returned by the last NextVersion() faulted (launch
  // failure, watchdog trip, quarantine).  The candidate is skipped: it
  // never becomes the comparison baseline and the walk moves on.  A
  // faulted *original* degrades the baseline to +infinity so any
  // working candidate wins; if every candidate faults the walk settles
  // back on version 0 (callers then fall back to the original binary).
  void ReportFault();

  bool Finalized() const { return finalized_; }
  std::uint32_t FinalVersion() const { return final_version_; }

  // Iterations consumed before the tuner settled (paper: "less than
  // three iterations on average").
  std::uint32_t IterationsToSettle() const { return iterations_to_settle_; }

  // True while the tuner probes the opposite-direction fail-safe
  // candidates (Section 3.3: the compile-time direction was wrong).
  bool InFailsafe() const { return failsafe_; }

  // The decision taken by the most recent Report{Runtime,Fault} call
  // (telemetry/trace labelling; does not influence the walk).
  TunerDecision LastDecision() const { return last_decision_; }

  // Replays the feedback walk over runtimes measured up front (one per
  // candidate in the binary's unified numbering, e.g. from a
  // sim::ParallelSweep).  The returned plan visits exactly the versions
  // the live walk would, provided each candidate's runtime does not
  // depend on launch order.
  static TunerPlan PlanFromSweep(const MultiVersionBinary& binary,
                                 const std::vector<double>& candidate_ms,
                                 double slowdown_tolerance = 0.02);
  static TunerPlan PlanFromSweep(const MultiVersionBinary& binary,
                                 const std::vector<double>& candidate_ms,
                                 const TunerOptions& options);

 private:
  void Finalize(std::uint32_t version);
  void EnterFailsafe();
  void Decide(double ms);
  // First candidate index >= `from` not skipped by a compile-time
  // validation verdict (NumCandidates() when none remains).
  std::uint32_t NextUnskipped(std::uint32_t from) const;
  // True when the walk has an unskipped candidate after `current` in
  // the active region (primary versions, or the full unified range in
  // fail-safe mode).
  bool HasNext(std::uint32_t current) const;
  bool AnyFailsafeUsable() const;

  const MultiVersionBinary* binary_;
  const TunerOptions options_;
  // Candidates the walk must never enter (failing validation verdicts);
  // all-false when the compile ran without the validation gate.
  std::vector<bool> skip_;
  bool finalized_ = false;
  bool failsafe_ = false;  // probing the opposite direction
  std::uint32_t final_version_ = 0;
  std::uint32_t cursor_ = 0;        // index of the version last handed out
  bool first_ = true;
  double prev_ms_ = 0.0;
  std::uint32_t prev_version_ = 0;
  std::uint32_t iteration_ = 0;
  std::uint32_t iterations_to_settle_ = 0;
  std::vector<double> samples_;  // probes of the current candidate
  TunerDecision last_decision_ = TunerDecision::kNone;
};

}  // namespace orion::runtime
