// Launch guard — the fault-tolerance layer between the tuner and the
// simulated GPU.
//
// Every candidate launch the runtime makes goes through LaunchGuard,
// which wraps the raw sim::GpuSimulator::Launch with:
//
//   * a watchdog: a cycle budget handed to the simulator so a runaway
//     candidate (infinite loop, pathological contention) is terminated
//     with a catchable fault instead of running to the global hard
//     stop;
//   * bounded retry with exponential backoff for *transient* launch
//     failures (the kind a driver reports sporadically and a re-launch
//     cures) — hangs and decode faults are not retryable;
//   * per-version quarantine: a candidate that keeps faulting is
//     disabled for the rest of the run so the tuner stops paying for
//     it.  Version 0 (the original) is exempt — it is the fallback of
//     last resort and must stay launchable;
//   * measurement perturbation: an installed FaultInjector may add
//     Gaussian noise to the reported runtime, exercising the tuner's
//     median-of-k probing.
//
// A guarded launch never throws for candidate-scoped failures: the
// outcome travels as a Status inside GuardedLaunch, and every fault is
// appended to the run's HealthReport.  With no fault plan installed and
// a zero watchdog budget the guard is a transparent pass-through —
// bit-identical results to calling the simulator directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/multiversion.h"
#include "sim/gpu_sim.h"

namespace orion::runtime {

class RunJournal;  // runtime/run_journal.h

struct GuardOptions {
  // Watchdog cycle budget per launch; 0 disables the watchdog (the
  // simulator's global hard stop still applies).
  std::uint64_t watchdog_cycle_budget = 0;
  // Total launch attempts per iteration (1 = no retries).
  std::uint32_t max_attempts = 3;
  // Simulated backoff before retry r is backoff_base_ms * 2^(r-1);
  // accounted in HealthReport::backoff_ms, not in iteration runtimes.
  double backoff_base_ms = 0.25;
  // Terminal faults a version survives before it is quarantined.
  std::uint32_t quarantine_threshold = 2;
};

// One entry in the run's fault log.
struct FaultEvent {
  std::uint32_t iteration = 0;
  std::uint32_t version = 0;  // unified candidate numbering
  Status status;
};

// Why a candidate was quarantined.  kValidation entries are stamped at
// guard construction from compile-time verdicts (the candidate is never
// launched); the others are derived from the terminal fault that
// crossed the quarantine threshold at runtime.
enum class QuarantineReason : std::uint8_t {
  kFaults = 0,  // repeated terminal faults of mixed/launch kinds
  kWatchdog,    // watchdog-terminated hangs
  kLaunch,      // persistent launch failures
  kDecode,      // the candidate binary failed to decode
  kValidation,  // differential translation validation rejected it
};

const char* QuarantineReasonName(QuarantineReason reason);

struct Quarantine {
  std::uint32_t version = 0;  // unified candidate numbering
  QuarantineReason reason = QuarantineReason::kFaults;
};

// Aggregated robustness telemetry for one tuned run.
struct HealthReport {
  std::uint64_t launches_attempted = 0;  // includes retries
  std::uint64_t launches_succeeded = 0;
  std::uint64_t transient_faults = 0;    // injected or observed transients
  std::uint64_t retries = 0;             // re-attempts after a transient
  std::uint64_t watchdog_trips = 0;      // hangs terminated by the budget
  std::uint64_t faulted_iterations = 0;  // iterations with no usable result
  double backoff_ms = 0.0;               // simulated retry backoff total
  std::vector<Quarantine> quarantined;   // candidates disabled, in order
  std::vector<FaultEvent> fault_log;     // every terminal fault
  // True when the run had to abandon the tuner's choice and fall back
  // to version 0 (the original).
  bool fallback_taken = false;

  bool Healthy() const {
    return fault_log.empty() && quarantined.empty() && !fallback_taken;
  }
  std::string ToString() const;
};

// Outcome of one guarded launch.
struct GuardedLaunch {
  Status status;          // ok() => `result` and `measured_ms` are valid
  sim::SimResult result;  // raw simulator result (successful launches)
  // Runtime as *measured* — equals result.ms unless an injector added
  // noise; for faults, the simulated time charged (watchdog budget for
  // a hang, 0 otherwise).
  double measured_ms = 0.0;
  std::uint32_t attempts = 0;
};

class LaunchGuard {
 public:
  // Candidates carrying a failing compile-time validation verdict are
  // pre-quarantined here (QuarantineReason::kValidation) — the guard
  // refuses to launch them and the tuner walk never enters them.
  // Version 0 is exempt as the fallback of last resort.
  //
  // With a `journal`, quarantine decisions and fault events are written
  // ahead to it, and on a resumed session the guard's whole state
  // (health aggregates, fault log, quarantine list, per-candidate fault
  // counts) is restored from the journal's last snapshot — a version
  // quarantined before the crash is never retried.
  LaunchGuard(const MultiVersionBinary* binary, sim::GpuSimulator* sim,
              const GuardOptions& options, RunJournal* journal = nullptr);

  // Launches candidate `version_index` (unified numbering) with the
  // watchdog, retry, and quarantine policy applied.  Never throws for
  // candidate-scoped failures; module-fatal conditions (ORION_CHECK)
  // still propagate.
  GuardedLaunch Launch(std::uint32_t version_index, sim::GlobalMemory* gmem,
                       const std::vector<std::uint32_t>& params,
                       std::uint32_t first_block, std::uint32_t num_blocks,
                       std::uint32_t iteration);

  bool Quarantined(std::uint32_t version_index) const;

  // Marks the run as having fallen back to the original version.
  void NoteFallback();

  const HealthReport& health() const { return health_; }

  // Terminal faults observed per candidate (unified numbering) —
  // snapshotted into the session journal so a resumed run keeps its
  // progress toward quarantine thresholds.
  const std::vector<std::uint32_t>& fault_counts() const {
    return fault_counts_;
  }

 private:
  void RecordFault(std::uint32_t iteration, std::uint32_t version,
                   const Status& status);
  const Quarantine* FindQuarantine(std::uint32_t version_index) const;

  const MultiVersionBinary* binary_;
  sim::GpuSimulator* sim_;
  const GuardOptions options_;
  RunJournal* journal_;
  HealthReport health_;
  std::vector<std::uint32_t> fault_counts_;  // terminal faults per candidate
};

}  // namespace orion::runtime
