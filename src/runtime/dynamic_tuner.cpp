#include "runtime/dynamic_tuner.h"

#include "common/error.h"

namespace orion::runtime {

DynamicTuner::DynamicTuner(const MultiVersionBinary* binary,
                           double slowdown_tolerance)
    : binary_(binary), tolerance_(slowdown_tolerance) {
  ORION_CHECK(!binary->versions.empty());
  if (!binary->can_tune) {
    // Static selection (Fig. 8 else-branch): no feedback loop, no
    // fail-safe probing.
    finalized_ = true;
    final_version_ = binary->static_choice;
  } else if (binary->NumCandidates() == 1) {
    finalized_ = true;
    final_version_ = 0;
  }
}

std::uint32_t DynamicTuner::NextVersion() {
  ++iteration_;
  if (finalized_) {
    return final_version_;
  }
  if (first_) {
    // First iteration: run the original kernel.
    first_ = false;
    cursor_ = 0;
    return 0;
  }
  // Run the next occupancy in the current direction's walk.
  ++cursor_;
  return cursor_;
}

void DynamicTuner::ReportRuntime(double ms) {
  if (finalized_) {
    return;
  }
  const std::uint32_t current = cursor_;
  if (current == 0) {
    prev_ms_ = ms;
    prev_version_ = 0;
    if (binary_->versions.size() == 1) {
      // Only the original in the primary direction: probe the
      // fail-safes if present, else settle immediately.
      Finalize(0);
    }
    return;
  }

  // In the primary direction the paper uses "worse runtime?" upward and
  // a 2% tolerance downward; fail-safe probing is by definition in the
  // opposite direction.
  const bool downward =
      (binary_->direction == TuneDirection::kDecreasing) != failsafe_;
  const bool worse = downward ? ms > prev_ms_ * (1.0 + tolerance_)
                              : ms > prev_ms_;
  if (worse) {
    Finalize(prev_version_);
    return;
  }
  prev_ms_ = ms;
  prev_version_ = current;
  const std::size_t walk_end = failsafe_
                                   ? binary_->NumCandidates()
                                   : binary_->versions.size();
  if (current + 1 >= walk_end) {
    Finalize(current);
  }
}

void DynamicTuner::Finalize(std::uint32_t version) {
  // Section 3.3 fail-safe: when the predicted direction produced
  // nothing better than the original, try the opposite direction once.
  if (!failsafe_ && version == 0 && !binary_->failsafe.empty()) {
    EnterFailsafe();
    return;
  }
  finalized_ = true;
  final_version_ = version;
  iterations_to_settle_ = iteration_;
}

TunerPlan DynamicTuner::PlanFromSweep(const MultiVersionBinary& binary,
                                      const std::vector<double>& candidate_ms,
                                      double slowdown_tolerance) {
  ORION_CHECK_MSG(candidate_ms.size() >= binary.NumCandidates(),
                  "PlanFromSweep needs a runtime per candidate");
  DynamicTuner tuner(&binary, slowdown_tolerance);
  TunerPlan plan;
  // The walk visits each candidate at most once (plus the original), so
  // NumCandidates() + 1 bounds it; the guard makes that explicit.
  const std::size_t bound = binary.NumCandidates() + 1;
  while (!tuner.Finalized() && plan.visits.size() < bound) {
    const std::uint32_t version = tuner.NextVersion();
    plan.visits.push_back(version);
    tuner.ReportRuntime(candidate_ms[version]);
  }
  plan.final_version = tuner.FinalVersion();
  plan.iterations_to_settle = tuner.IterationsToSettle();
  return plan;
}

void DynamicTuner::EnterFailsafe() {
  failsafe_ = true;
  // Resume the walk at the first fail-safe candidate; the baseline for
  // comparison stays the original's runtime.
  cursor_ = static_cast<std::uint32_t>(binary_->versions.size()) - 1;
  prev_version_ = 0;
}

}  // namespace orion::runtime
