#include "runtime/dynamic_tuner.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace orion::runtime {

namespace {

// Median of the collected probes.  With a single probe this returns the
// sample itself, keeping the default configuration bit-identical to the
// pre-probing tuner.
double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  if (n % 2 == 1) {
    return samples[n / 2];
  }
  return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

}  // namespace

const char* TunerDecisionName(TunerDecision decision) {
  switch (decision) {
    case TunerDecision::kNone:
      return "none";
    case TunerDecision::kBaseline:
      return "baseline";
    case TunerDecision::kProbe:
      return "probe";
    case TunerDecision::kAdvance:
      return "advance";
    case TunerDecision::kLock:
      return "lock";
    case TunerDecision::kFailsafe:
      return "failsafe";
    case TunerDecision::kFaultSkip:
      return "fault-skip";
    case TunerDecision::kSteady:
      return "steady";
  }
  return "?";
}

DynamicTuner::DynamicTuner(const MultiVersionBinary* binary,
                           double slowdown_tolerance)
    : DynamicTuner(binary, TunerOptions{slowdown_tolerance, 1, 0.0}) {}

DynamicTuner::DynamicTuner(const MultiVersionBinary* binary,
                           const TunerOptions& options)
    : binary_(binary), options_(options) {
  ORION_CHECK(!binary->versions.empty());
  ORION_CHECK_MSG(options_.probe_count >= 1, "probe_count must be >= 1");
  // Candidates rejected by compile-time translation validation are
  // never entered: the walk steps over them as if they were not
  // compiled.  Version 0 is exempt (always-safe fallback), and with the
  // gate off every verdict is kNotValidated, leaving the walk
  // bit-identical to the ungated tuner.
  skip_.assign(binary->NumCandidates(), false);
  for (std::size_t i = 1; i < binary->NumCandidates(); ++i) {
    skip_[i] = binary->Candidate(i).validation.Failed();
  }
  if (!binary->can_tune) {
    // Static selection (Fig. 8 else-branch): no feedback loop, no
    // fail-safe probing.
    finalized_ = true;
    final_version_ = binary->static_choice;
  } else if (binary->NumCandidates() == 1) {
    finalized_ = true;
    final_version_ = 0;
  }
}

std::uint32_t DynamicTuner::NextUnskipped(std::uint32_t from) const {
  std::uint32_t i = from;
  while (i < binary_->NumCandidates() && skip_[i]) {
    ++i;
  }
  return i;
}

bool DynamicTuner::HasNext(std::uint32_t current) const {
  const std::size_t walk_end = failsafe_
                                   ? binary_->NumCandidates()
                                   : binary_->versions.size();
  return NextUnskipped(current + 1) < walk_end;
}

bool DynamicTuner::AnyFailsafeUsable() const {
  return NextUnskipped(static_cast<std::uint32_t>(
             binary_->versions.size())) < binary_->NumCandidates();
}

std::uint32_t DynamicTuner::NextVersion() {
  ++iteration_;
  if (finalized_) {
    return final_version_;
  }
  if (first_) {
    // First iteration: run the original kernel.
    first_ = false;
    cursor_ = 0;
    return 0;
  }
  if (!samples_.empty()) {
    // Mid-probe: keep measuring the same candidate until its k samples
    // are in.
    return cursor_;
  }
  // Run the next occupancy in the current direction's walk, stepping
  // over validation-rejected candidates.
  cursor_ = NextUnskipped(cursor_ + 1);
  return cursor_;
}

void DynamicTuner::ReportRuntime(double ms) {
  if (finalized_) {
    last_decision_ = TunerDecision::kSteady;
    return;  // documented no-op: the steady state needs no feedback
  }
  ORION_CHECK_MSG(iteration_ > 0,
                  "ReportRuntime called before the first NextVersion");
  samples_.push_back(ms);
  if (samples_.size() < options_.probe_count) {
    last_decision_ = TunerDecision::kProbe;
    return;  // keep probing this candidate
  }
  const double median = Median(std::move(samples_));
  samples_.clear();
  Decide(median);
}

void DynamicTuner::Decide(double ms) {
  const std::uint32_t current = cursor_;
  if (current == 0) {
    last_decision_ = TunerDecision::kBaseline;
    prev_ms_ = ms;
    prev_version_ = 0;
    if (!HasNext(0)) {
      // Nothing else usable in the primary direction: probe the
      // fail-safes if present, else settle immediately.
      Finalize(0);
    }
    return;
  }

  // In the primary direction the paper uses "worse runtime?" upward and
  // a 2% tolerance downward; fail-safe probing is by definition in the
  // opposite direction.  Hysteresis widens both margins so borderline
  // noise cannot flip the decision.
  const bool downward =
      (binary_->direction == TuneDirection::kDecreasing) != failsafe_;
  const bool worse =
      downward
          ? ms > prev_ms_ *
                     (1.0 + options_.slowdown_tolerance + options_.hysteresis)
          : ms > prev_ms_ * (1.0 + options_.hysteresis);
  if (worse) {
    Finalize(prev_version_);
    return;
  }
  last_decision_ = TunerDecision::kAdvance;
  prev_ms_ = ms;
  prev_version_ = current;
  if (!HasNext(current)) {
    Finalize(current);
  }
}

void DynamicTuner::ReportFault() {
  if (finalized_) {
    last_decision_ = TunerDecision::kSteady;
    return;  // nothing to adapt; the caller handles steady-state faults
  }
  ORION_CHECK_MSG(iteration_ > 0,
                  "ReportFault called before the first NextVersion");
  last_decision_ = TunerDecision::kFaultSkip;
  samples_.clear();  // discard partial probes of the faulted candidate
  const std::uint32_t current = cursor_;
  if (current == 0) {
    // The baseline itself faulted.  Degrade gracefully: any candidate
    // that completes beats an unusable original, so the comparison
    // baseline becomes +infinity and the walk continues.
    prev_ms_ = std::numeric_limits<double>::infinity();
    prev_version_ = 0;
    if (!HasNext(0)) {
      Finalize(0);
    }
    return;
  }
  // A faulted candidate is skipped: it never becomes the baseline and
  // the walk advances past it on the next NextVersion().
  if (!HasNext(current)) {
    Finalize(prev_version_);
  }
}

void DynamicTuner::Finalize(std::uint32_t version) {
  // Section 3.3 fail-safe: when the predicted direction produced
  // nothing better than the original, try the opposite direction once
  // (only if at least one fail-safe survived validation).
  if (!failsafe_ && version == 0 && AnyFailsafeUsable()) {
    EnterFailsafe();
    last_decision_ = TunerDecision::kFailsafe;
    return;
  }
  finalized_ = true;
  final_version_ = version;
  iterations_to_settle_ = iteration_;
  last_decision_ = TunerDecision::kLock;
}

TunerPlan DynamicTuner::PlanFromSweep(const MultiVersionBinary& binary,
                                      const std::vector<double>& candidate_ms,
                                      double slowdown_tolerance) {
  return PlanFromSweep(binary, candidate_ms,
                       TunerOptions{slowdown_tolerance, 1, 0.0});
}

TunerPlan DynamicTuner::PlanFromSweep(const MultiVersionBinary& binary,
                                      const std::vector<double>& candidate_ms,
                                      const TunerOptions& options) {
  ORION_CHECK_MSG(candidate_ms.size() >= binary.NumCandidates(),
                  "PlanFromSweep needs a runtime per candidate");
  DynamicTuner tuner(&binary, options);
  TunerPlan plan;
  // The walk visits each candidate at most probe_count times (plus the
  // original), so (NumCandidates() + 1) * probe_count bounds it; the
  // guard makes that explicit.
  const std::size_t bound =
      (binary.NumCandidates() + 1) * options.probe_count;
  while (!tuner.Finalized() && plan.visits.size() < bound) {
    const std::uint32_t version = tuner.NextVersion();
    plan.visits.push_back(version);
    tuner.ReportRuntime(candidate_ms[version]);
  }
  plan.final_version = tuner.FinalVersion();
  plan.iterations_to_settle = tuner.IterationsToSettle();
  return plan;
}

void DynamicTuner::EnterFailsafe() {
  failsafe_ = true;
  // Resume the walk at the first fail-safe candidate; the baseline for
  // comparison stays the original's runtime.
  cursor_ = static_cast<std::uint32_t>(binary_->versions.size()) - 1;
  prev_version_ = 0;
  samples_.clear();
}

}  // namespace orion::runtime
