#include "runtime/launcher.h"

#include <optional>

#include "common/error.h"
#include "sim/parallel.h"

namespace orion::runtime {

TunedRunResult TunedLauncher::Run(sim::GlobalMemory* gmem,
                                  const std::vector<std::uint32_t>& params,
                                  const RunPlan& plan,
                                  const std::vector<std::vector<std::uint32_t>>*
                                      per_iteration_params) {
  TunedRunResult result;
  DynamicTuner tuner(binary_, plan.slowdown_tolerance);

  // Optional parallel probe: measure every candidate up front on
  // private memory copies and replay the walk over those runtimes.
  std::optional<TunerPlan> probe;
  if (plan.parallel_probe && binary_->can_tune &&
      binary_->NumCandidates() > 1 && per_iteration_params == nullptr) {
    std::vector<sim::SweepCandidate> candidates(binary_->NumCandidates());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const KernelVersion& version = binary_->Candidate(i);
      candidates[i].module = &binary_->ModuleOf(version);
      candidates[i].iteration_params = {params};
      candidates[i].dynamic_smem_bytes = version.smem_padding_bytes;
    }
    const sim::ParallelSweep sweep(sim_->spec(), sim_->cache_config(),
                                   plan.probe_threads, sim_->engine());
    const std::vector<sim::SweepOutcome> outcomes =
        sweep.Run(candidates, *gmem);
    std::vector<double> candidate_ms(outcomes.size(), 0.0);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      candidate_ms[i] = outcomes[i].launches.front().ms;
    }
    probe = DynamicTuner::PlanFromSweep(*binary_, candidate_ms,
                                        plan.slowdown_tolerance);
  }

  const std::uint32_t grid =
      binary_->modules.front().launch.grid_dim;

  // Decide the iteration structure: a natural kernel loop, or kernel
  // splitting of a single invocation.
  std::uint32_t launches = plan.iterations;
  std::uint32_t blocks_per_launch = grid;
  bool split = false;
  if (plan.iterations <= 1 && binary_->can_tune && plan.allow_split &&
      plan.split_factor > 1 && grid >= plan.split_factor) {
    split = true;
    launches = plan.split_factor;
    blocks_per_launch = grid / plan.split_factor;
  }
  result.used_split = split;

  std::uint32_t next_block = 0;
  for (std::uint32_t it = 0; it < launches; ++it) {
    const std::uint32_t version_index =
        probe.has_value()
            ? (it < probe->visits.size() ? probe->visits[it]
                                         : probe->final_version)
            : tuner.NextVersion();
    const KernelVersion& version = binary_->Candidate(version_index);
    const isa::Module& module = binary_->ModuleOf(version);

    std::uint32_t first = 0;
    std::uint32_t count = grid;
    if (split) {
      first = next_block;
      count = (it + 1 == launches) ? grid - next_block : blocks_per_launch;
      next_block += count;
    }
    const std::vector<std::uint32_t>& iter_params =
        (per_iteration_params != nullptr && !per_iteration_params->empty())
            ? (*per_iteration_params)[it % per_iteration_params->size()]
            : params;
    const sim::SimResult sr = sim_->Launch(module, gmem, iter_params, first,
                                           count, version.smem_padding_bytes);
    if (!probe.has_value()) {
      tuner.ReportRuntime(sr.ms);
    }

    IterationRecord record;
    record.version = version_index;
    record.ms = sr.ms;
    record.energy = sr.energy;
    record.occupancy = sr.occupancy.occupancy;
    result.total_ms += sr.ms;
    result.total_energy += sr.energy;
    result.records.push_back(record);
  }

  result.final_version =
      probe.has_value() ? probe->final_version : tuner.FinalVersion();
  result.iterations_to_settle =
      probe.has_value() ? probe->iterations_to_settle
                        : tuner.IterationsToSettle();

  // Steady-state cost: average over iterations that ran the final
  // version after settling (fall back to the last record).
  double steady_ms = 0.0;
  double steady_energy = 0.0;
  double steady_occ = 0.0;
  std::uint32_t steady_count = 0;
  for (const IterationRecord& record : result.records) {
    if (record.version == result.final_version) {
      steady_ms += record.ms;
      steady_energy += record.energy;
      steady_occ = record.occupancy;
      ++steady_count;
    }
  }
  if (steady_count > 0) {
    result.steady_ms = steady_ms / steady_count;
    result.steady_energy = steady_energy / steady_count;
  } else {
    result.steady_ms = result.records.back().ms;
    result.steady_energy = result.records.back().energy;
  }
  result.steady_occupancy =
      binary_->Candidate(result.final_version).occupancy;
  (void)steady_occ;
  return result;
}

FixedRunResult RunFixed(const isa::Module& module, sim::GpuSimulator* sim,
                        sim::GlobalMemory* gmem,
                        const std::vector<std::uint32_t>& params,
                        std::uint32_t iterations,
                        std::uint32_t smem_padding_bytes) {
  ORION_CHECK(iterations > 0);
  FixedRunResult result;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    const sim::SimResult sr =
        sim->LaunchAll(module, gmem, params, smem_padding_bytes);
    result.ms += sr.ms;
    result.energy += sr.energy;
    result.occupancy = sr.occupancy;
  }
  result.ms /= iterations;
  result.energy /= iterations;
  return result;
}

}  // namespace orion::runtime
