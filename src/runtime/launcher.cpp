#include "runtime/launcher.h"

#include <limits>
#include <optional>

#include "common/error.h"
#include "runtime/run_journal.h"
#include "sim/parallel.h"
#include "telemetry/telemetry.h"

namespace orion::runtime {

TunedRunResult TunedLauncher::Run(sim::GlobalMemory* gmem,
                                  const std::vector<std::uint32_t>& params,
                                  const RunPlan& plan,
                                  const std::vector<std::vector<std::uint32_t>>*
                                      per_iteration_params) {
  TunedRunResult result;
  TunerOptions tuner_options;
  tuner_options.slowdown_tolerance = plan.slowdown_tolerance;
  tuner_options.probe_count = plan.probe_count;
  tuner_options.hysteresis = plan.hysteresis;
  DynamicTuner tuner(binary_, tuner_options);
  RunJournal* journal = plan.journal;
  LaunchGuard guard(binary_, sim_, plan.guard, journal);

  // Optional parallel probe: measure every candidate up front on
  // private memory copies and replay the walk over those runtimes.
  // Incompatible with session journaling, whose replay contract is
  // per-iteration live feedback — the journal wins.
  std::optional<TunerPlan> probe;
  if (plan.parallel_probe && journal == nullptr && binary_->can_tune &&
      binary_->NumCandidates() > 1 && per_iteration_params == nullptr) {
    // Validation-rejected candidates are excluded from the sweep: a
    // miscompiled binary is never simulated, and the skip-aware replay
    // walk never visits its slot (stubbed to +infinity).
    constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();
    std::vector<sim::SweepCandidate> candidates;
    std::vector<std::size_t> sweep_slot(binary_->NumCandidates(), kNoSlot);
    for (std::size_t i = 0; i < binary_->NumCandidates(); ++i) {
      const KernelVersion& version = binary_->Candidate(i);
      if (i != 0 && version.validation.Failed()) {
        continue;
      }
      sweep_slot[i] = candidates.size();
      sim::SweepCandidate candidate;
      candidate.module = &binary_->ModuleOf(version);
      candidate.iteration_params = {params};
      candidate.dynamic_smem_bytes = version.smem_padding_bytes;
      candidates.push_back(std::move(candidate));
    }
    const sim::ParallelSweep sweep(sim_->spec(), sim_->cache_config(),
                                   plan.probe_threads, sim_->engine());
    const std::vector<sim::SweepOutcome> outcomes =
        sweep.Run(candidates, *gmem);
    std::vector<double> candidate_ms(
        binary_->NumCandidates(), std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < sweep_slot.size(); ++i) {
      if (sweep_slot[i] != kNoSlot) {
        candidate_ms[i] = outcomes[sweep_slot[i]].launches.front().ms;
      }
    }
    probe = DynamicTuner::PlanFromSweep(*binary_, candidate_ms,
                                        tuner_options);
  }

  const std::uint32_t grid =
      binary_->modules.front().launch.grid_dim;

  // Decide the iteration structure: a natural kernel loop, or kernel
  // splitting of a single invocation.
  std::uint32_t launches = plan.iterations;
  std::uint32_t blocks_per_launch = grid;
  bool split = false;
  if (plan.iterations <= 1 && binary_->can_tune && plan.allow_split &&
      plan.split_factor > 1 && grid >= plan.split_factor) {
    split = true;
    launches = plan.split_factor;
    blocks_per_launch = grid / plan.split_factor;
  }
  result.used_split = split;

  std::uint32_t next_block = 0;
  for (std::uint32_t it = 0; it < launches; ++it) {
    std::uint32_t version_index =
        probe.has_value()
            ? (it < probe->visits.size() ? probe->visits[it]
                                         : probe->final_version)
            : tuner.NextVersion();
    const bool settled = probe.has_value() ? it >= probe->visits.size()
                                           : tuner.Finalized();

    std::uint32_t first = 0;
    std::uint32_t count = grid;
    if (split) {
      first = next_block;
      count = (it + 1 == launches) ? grid - next_block : blocks_per_launch;
      next_block += count;
    }

    // Session replay: an iteration the journal already holds is served
    // from it — no launch, no re-measurement — and its recorded runtime
    // feeds the tuner so the walk advances exactly as it did before the
    // crash.  Mid-walk the recorded version must match the tuner's
    // deterministic choice (ReplayIteration throws otherwise); once
    // settled the recorded version is trusted as-is, because quarantines
    // learned *later* in the interrupted run are already restored and
    // would make today's fallback rewrite disagree with history.
    if (journal != nullptr) {
      IterationRecord replayed;
      const std::uint32_t expected =
          settled ? RunJournal::kAnyVersion : version_index;
      if (journal->ReplayIteration(it, expected, &replayed)) {
        if (!probe.has_value()) {
          if (replayed.faulted) {
            tuner.ReportFault();
          } else {
            tuner.ReportRuntime(replayed.ms);
          }
        }
        ORION_COUNTER_ADD("tuner.iterations", 1);
        ORION_COUNTER_ADD("tuner.replayed_iterations", 1);
        if (telemetry::Enabled()) {
          telemetry::Instant(
              "tuner", "tuner.iteration",
              {telemetry::Arg("iter", it),
               telemetry::Arg("version", replayed.version),
               telemetry::Arg("tag", binary_->Candidate(replayed.version).tag),
               telemetry::Arg("ms", replayed.ms),
               telemetry::Arg("faulted", replayed.faulted),
               telemetry::Arg("decision", "journal-replay")});
        }
        result.total_ms += replayed.ms;
        result.total_energy += replayed.energy;
        result.records.push_back(replayed);
        continue;
      }
    }

    // Post-settle fallback: once the walk is over, a quarantined choice
    // degrades to the original instead of burning iterations on a
    // candidate the guard will refuse.  Mid-walk the quarantine hit is
    // delivered as a fault so the tuner learns to skip the version.
    if (settled && version_index != 0 && guard.Quarantined(version_index)) {
      version_index = 0;
      guard.NoteFallback();
    }

    const std::vector<std::uint32_t>& iter_params =
        (per_iteration_params != nullptr && !per_iteration_params->empty())
            ? (*per_iteration_params)[it % per_iteration_params->size()]
            : params;
    // Write-ahead: the launch decision is durable before its effect.
    if (journal != nullptr) {
      journal->ProbeIntent(it, version_index);
    }
    const GuardedLaunch launch =
        guard.Launch(version_index, gmem, iter_params, first, count, it);

    IterationRecord record;
    record.version = version_index;
    if (launch.status.ok()) {
      if (!probe.has_value()) {
        tuner.ReportRuntime(launch.measured_ms);
      }
      record.ms = launch.measured_ms;
      record.energy = launch.result.energy;
      record.occupancy = launch.result.occupancy.occupancy;
    } else {
      if (!probe.has_value()) {
        tuner.ReportFault();
      }
      record.faulted = true;
      record.ms = launch.measured_ms;  // time charged (hang budget or 0)
    }
    ORION_COUNTER_ADD("tuner.iterations", 1);
    if (telemetry::Enabled()) {
      const char* decision =
          probe.has_value()
              ? (it < probe->visits.size() ? "replay" : "steady")
              : TunerDecisionName(tuner.LastDecision());
      telemetry::Instant(
          "tuner", "tuner.iteration",
          {telemetry::Arg("iter", it),
           telemetry::Arg("version", version_index),
           telemetry::Arg("tag", binary_->Candidate(version_index).tag),
           telemetry::Arg("ms", record.ms),
           telemetry::Arg("occupancy", record.occupancy),
           telemetry::Arg("faulted", record.faulted),
           telemetry::Arg("decision", decision)});
    }
    result.total_ms += record.ms;
    result.total_energy += record.energy;
    result.records.push_back(record);
    // The measurement becomes durable (with a full guard-state snapshot)
    // before the next iteration can act on it.
    if (journal != nullptr) {
      journal->ProbeResult(it, record, guard.health(), guard.fault_counts());
    }
  }

  result.final_version =
      probe.has_value() ? probe->final_version : tuner.FinalVersion();
  result.iterations_to_settle =
      probe.has_value() ? probe->iterations_to_settle
                        : tuner.IterationsToSettle();
  // A quarantined final choice falls back to the original version.
  if (result.final_version != 0 && guard.Quarantined(result.final_version)) {
    result.final_version = 0;
    guard.NoteFallback();
  }
  // When not a single iteration produced a usable measurement, the run
  // is riding on the original version by definition.
  bool any_usable = false;
  for (const IterationRecord& record : result.records) {
    any_usable |= !record.faulted;
  }
  if (!result.records.empty() && !any_usable) {
    guard.NoteFallback();
  }

  // Steady-state cost: average over non-faulted iterations that ran the
  // final version after settling (fall back to the last usable record).
  double steady_ms = 0.0;
  double steady_energy = 0.0;
  std::uint32_t steady_count = 0;
  const IterationRecord* last_usable = nullptr;
  for (const IterationRecord& record : result.records) {
    if (record.faulted) {
      continue;
    }
    last_usable = &record;
    if (record.version == result.final_version) {
      steady_ms += record.ms;
      steady_energy += record.energy;
      ++steady_count;
    }
  }
  if (steady_count > 0) {
    result.steady_ms = steady_ms / steady_count;
    result.steady_energy = steady_energy / steady_count;
  } else if (last_usable != nullptr) {
    result.steady_ms = last_usable->ms;
    result.steady_energy = last_usable->energy;
  }
  result.steady_occupancy =
      binary_->Candidate(result.final_version).occupancy;
  result.health = guard.health();
  if (telemetry::Enabled()) {
    telemetry::Instant(
        "tuner", "tuner.lock",
        {telemetry::Arg("version", result.final_version),
         telemetry::Arg("tag",
                        binary_->Candidate(result.final_version).tag),
         telemetry::Arg("iterations_to_settle",
                        result.iterations_to_settle),
         telemetry::Arg("fallback", result.health.fallback_taken),
         telemetry::Arg("steady_ms", result.steady_ms)});
    ORION_COUNTER_ADD("tuner.settles", 1);
  }
  if (journal != nullptr) {
    journal->LockDecision(result);
  }
  return result;
}

FixedRunResult RunFixed(const isa::Module& module, sim::GpuSimulator* sim,
                        sim::GlobalMemory* gmem,
                        const std::vector<std::uint32_t>& params,
                        std::uint32_t iterations,
                        std::uint32_t smem_padding_bytes) {
  ORION_CHECK(iterations > 0);
  FixedRunResult result;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    const sim::SimResult sr =
        sim->LaunchAll(module, gmem, params, smem_padding_bytes);
    result.ms += sr.ms;
    result.energy += sr.energy;
    result.occupancy = sr.occupancy;
  }
  result.ms /= iterations;
  result.energy /= iterations;
  return result;
}

}  // namespace orion::runtime
