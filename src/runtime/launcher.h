// Tuned kernel launching against the simulated GPU.
//
// Drives an application-style loop around a kernel: every iteration
// launches the kernel once, the Fig. 9 tuner picks which version runs,
// and runtimes feed back into it.  When an application has no kernel
// loop but enough threads, one invocation is *split* into several
// smaller launches to manufacture tuning iterations (Section 3.4,
// kernel splitting [30]).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/dynamic_tuner.h"
#include "runtime/guard.h"
#include "runtime/multiversion.h"
#include "sim/gpu_sim.h"

namespace orion::runtime {

class RunJournal;  // runtime/run_journal.h

struct RunPlan {
  std::uint32_t iterations = 16;  // application kernel-loop trip count
  bool allow_split = true;        // kernel splitting when iterations == 1
  std::uint32_t split_factor = 4;
  double slowdown_tolerance = 0.02;
  // Noise hardening for the feedback walk (see TunerOptions); the
  // defaults reproduce the single-probe, no-hysteresis paper walk.
  std::uint32_t probe_count = 1;
  double hysteresis = 0.0;
  // Fault-tolerance policy for every launch (watchdog, retry,
  // quarantine).  The defaults are a transparent pass-through.
  GuardOptions guard;
  // Pre-measure every candidate concurrently (sim::ParallelSweep, each
  // against a private memory copy) and replay the Fig. 9 walk over
  // those runtimes instead of tuning on live feedback.  The launched
  // version sequence matches the feedback walk whenever candidate
  // runtimes are launch-order independent.  Off by default: live
  // feedback is the paper's mechanism.
  bool parallel_probe = false;
  unsigned probe_threads = 0;  // 0 = hardware concurrency
  // Crash-safe session journaling (persist::Session).  When set, every
  // decision is written ahead of its effect, recorded iterations replay
  // from the journal instead of re-measuring, and the guard's
  // quarantine state is restored on resume.  Implies live feedback
  // (parallel_probe is ignored — the replay contract is per-iteration).
  RunJournal* journal = nullptr;
};

struct IterationRecord {
  std::uint32_t version = 0;
  double ms = 0.0;
  double energy = 0.0;
  double occupancy = 0.0;
  // True when the iteration produced no usable result (launch fault,
  // watchdog trip, quarantine hit); `ms` then holds the simulated time
  // charged (the watchdog budget for hangs, 0 otherwise).
  bool faulted = false;
};

struct TunedRunResult {
  std::vector<IterationRecord> records;
  std::uint32_t final_version = 0;
  std::uint32_t iterations_to_settle = 0;
  bool used_split = false;
  double total_ms = 0.0;
  double total_energy = 0.0;
  // Steady-state (final version) per-iteration cost; faulted
  // iterations are excluded from the averages.
  double steady_ms = 0.0;
  double steady_energy = 0.0;
  arch::OccupancyResult steady_occupancy;
  // Robustness telemetry from the launch guard (empty when healthy).
  HealthReport health;
};

class TunedLauncher {
 public:
  TunedLauncher(const MultiVersionBinary* binary, sim::GpuSimulator* sim)
      : binary_(binary), sim_(sim) {}

  // `per_iteration_params`, when given, overrides the kernel parameters
  // per application iteration (e.g. bfs frontier sizes).
  //
  // Candidate-scoped failures never escape Run: every launch goes
  // through a LaunchGuard, faulted iterations are recorded (and fed to
  // the tuner as ReportFault), and if the settled version is
  // quarantined the run falls back to version 0.  Only module-fatal
  // conditions (ORION_CHECK invariants) still throw.
  TunedRunResult Run(sim::GlobalMemory* gmem,
                     const std::vector<std::uint32_t>& params,
                     const RunPlan& plan,
                     const std::vector<std::vector<std::uint32_t>>*
                         per_iteration_params = nullptr);

 private:
  const MultiVersionBinary* binary_;
  sim::GpuSimulator* sim_;
};

// Measures a single fixed version over `iterations` whole-grid launches
// (used for the exhaustive Orion-Min/Orion-Max sweeps and the nvcc
// baseline bars).  Returns per-iteration averages.
struct FixedRunResult {
  double ms = 0.0;
  double energy = 0.0;
  arch::OccupancyResult occupancy;
};

FixedRunResult RunFixed(const isa::Module& module, sim::GpuSimulator* sim,
                        sim::GlobalMemory* gmem,
                        const std::vector<std::uint32_t>& params,
                        std::uint32_t iterations,
                        std::uint32_t smem_padding_bytes = 0);

}  // namespace orion::runtime
