#include "isa/builder.h"

#include "common/error.h"
#include "common/strings.h"
#include "isa/verifier.h"

namespace orion::isa {

Function& FunctionBuilder::func() {
  return parent_->module_.functions[func_index_];
}

Operand FunctionBuilder::NewReg(std::uint8_t width) {
  ORION_CHECK(width >= 1 && width <= 4);
  return Operand::VReg(parent_->next_vreg_++, width);
}

std::string FunctionBuilder::NewLabel(const std::string& hint) {
  return StrFormat("%s%d_%s", hint.c_str(), next_label_++, func().name.c_str());
}

void FunctionBuilder::Bind(const std::string& label) {
  pending_labels_.push_back(label);
}

std::uint32_t FunctionBuilder::Emit(Instruction instr) {
  Function& f = func();
  const std::uint32_t index = f.NumInstrs();
  for (const std::string& label : pending_labels_) {
    ORION_CHECK_MSG(f.labels.emplace(label, index).second,
                    "duplicate label " + label);
  }
  pending_labels_.clear();
  f.instrs.push_back(std::move(instr));
  return index;
}

Operand FunctionBuilder::EmitAlu(Opcode op, std::uint8_t width,
                                 std::vector<Operand> srcs) {
  Instruction instr;
  instr.op = op;
  const Operand dst = NewReg(width);
  instr.dsts.push_back(dst);
  instr.srcs = std::move(srcs);
  Emit(std::move(instr));
  return dst;
}

Operand FunctionBuilder::Mov(Operand src, std::uint8_t width) {
  const std::uint8_t w = src.IsReg() ? src.width : width;
  return EmitAlu(Opcode::kMov, w, {src});
}

Operand FunctionBuilder::IAdd(Operand a, Operand b) { return EmitAlu(Opcode::kIAdd, 1, {a, b}); }
Operand FunctionBuilder::ISub(Operand a, Operand b) { return EmitAlu(Opcode::kISub, 1, {a, b}); }
Operand FunctionBuilder::IMul(Operand a, Operand b) { return EmitAlu(Opcode::kIMul, 1, {a, b}); }
Operand FunctionBuilder::IMad(Operand a, Operand b, Operand c) {
  return EmitAlu(Opcode::kIMad, 1, {a, b, c});
}
Operand FunctionBuilder::IMin(Operand a, Operand b) { return EmitAlu(Opcode::kIMin, 1, {a, b}); }
Operand FunctionBuilder::IMax(Operand a, Operand b) { return EmitAlu(Opcode::kIMax, 1, {a, b}); }
Operand FunctionBuilder::And(Operand a, Operand b) { return EmitAlu(Opcode::kAnd, 1, {a, b}); }
Operand FunctionBuilder::Or(Operand a, Operand b) { return EmitAlu(Opcode::kOr, 1, {a, b}); }
Operand FunctionBuilder::Xor(Operand a, Operand b) { return EmitAlu(Opcode::kXor, 1, {a, b}); }
Operand FunctionBuilder::Shl(Operand a, Operand b) { return EmitAlu(Opcode::kShl, 1, {a, b}); }
Operand FunctionBuilder::Shr(Operand a, Operand b) { return EmitAlu(Opcode::kShr, 1, {a, b}); }
Operand FunctionBuilder::FAdd(Operand a, Operand b) { return EmitAlu(Opcode::kFAdd, 1, {a, b}); }
Operand FunctionBuilder::FMul(Operand a, Operand b) { return EmitAlu(Opcode::kFMul, 1, {a, b}); }
Operand FunctionBuilder::FFma(Operand a, Operand b, Operand c) {
  return EmitAlu(Opcode::kFFma, 1, {a, b, c});
}
Operand FunctionBuilder::FMin(Operand a, Operand b) { return EmitAlu(Opcode::kFMin, 1, {a, b}); }
Operand FunctionBuilder::FMax(Operand a, Operand b) { return EmitAlu(Opcode::kFMax, 1, {a, b}); }
Operand FunctionBuilder::FSqrt(Operand a) { return EmitAlu(Opcode::kFSqrt, 1, {a}); }
Operand FunctionBuilder::FRcp(Operand a) { return EmitAlu(Opcode::kFRcp, 1, {a}); }
Operand FunctionBuilder::FExp(Operand a) { return EmitAlu(Opcode::kFExp, 1, {a}); }

Operand FunctionBuilder::Setp(CmpKind cmp, Operand a, Operand b, CmpType type) {
  Instruction instr;
  instr.op = Opcode::kSetp;
  instr.cmp = cmp;
  instr.cmp_type = type;
  const Operand dst = NewReg(1);
  instr.dsts.push_back(dst);
  instr.srcs = {a, b};
  Emit(std::move(instr));
  return dst;
}

Operand FunctionBuilder::Sel(Operand cond, Operand a, Operand b) {
  return EmitAlu(Opcode::kSel, a.IsReg() ? a.width : 1, {cond, a, b});
}

Operand FunctionBuilder::S2R(SpecialReg sreg) {
  return EmitAlu(Opcode::kS2R, 1, {Operand::Special(sreg)});
}

Operand FunctionBuilder::FAddW(Operand a, Operand b, std::uint8_t width) {
  return EmitAlu(Opcode::kFAdd, width, {a, b});
}

Operand FunctionBuilder::FMulW(Operand a, Operand b, std::uint8_t width) {
  return EmitAlu(Opcode::kFMul, width, {a, b});
}

Operand FunctionBuilder::LdGlobal(Operand addr, std::int64_t offset_bytes,
                                  std::uint8_t width, std::uint16_t stride) {
  Instruction instr;
  instr.op = Opcode::kLd;
  instr.space = MemSpace::kGlobal;
  instr.stride = stride;
  const Operand dst = NewReg(width);
  instr.dsts.push_back(dst);
  instr.srcs = {addr, Operand::Imm(offset_bytes)};
  Emit(std::move(instr));
  return dst;
}

void FunctionBuilder::StGlobal(Operand addr, std::int64_t offset_bytes,
                               Operand value, std::uint16_t stride) {
  Instruction instr;
  instr.op = Opcode::kSt;
  instr.space = MemSpace::kGlobal;
  instr.stride = stride;
  instr.srcs = {addr, Operand::Imm(offset_bytes), value};
  Emit(std::move(instr));
}

Operand FunctionBuilder::LdShared(Operand addr, std::int64_t offset_bytes,
                                  std::uint8_t width) {
  Instruction instr;
  instr.op = Opcode::kLd;
  instr.space = MemSpace::kShared;
  const Operand dst = NewReg(width);
  instr.dsts.push_back(dst);
  instr.srcs = {addr, Operand::Imm(offset_bytes)};
  Emit(std::move(instr));
  return dst;
}

void FunctionBuilder::StShared(Operand addr, std::int64_t offset_bytes,
                               Operand value) {
  Instruction instr;
  instr.op = Opcode::kSt;
  instr.space = MemSpace::kShared;
  instr.srcs = {addr, Operand::Imm(offset_bytes), value};
  Emit(std::move(instr));
}

Operand FunctionBuilder::LdParam(std::uint32_t index) {
  Instruction instr;
  instr.op = Opcode::kLd;
  instr.space = MemSpace::kParam;
  const Operand dst = NewReg(1);
  instr.dsts.push_back(dst);
  instr.srcs = {Operand::Imm(index), Operand::Imm(0)};
  Emit(std::move(instr));
  return dst;
}

void FunctionBuilder::Bra(const std::string& label) {
  Instruction instr;
  instr.op = Opcode::kBra;
  instr.target = label;
  Emit(std::move(instr));
}

void FunctionBuilder::Brz(Operand cond, const std::string& label) {
  Instruction instr;
  instr.op = Opcode::kBrz;
  instr.srcs = {cond};
  instr.target = label;
  Emit(std::move(instr));
}

void FunctionBuilder::Brnz(Operand cond, const std::string& label) {
  Instruction instr;
  instr.op = Opcode::kBrnz;
  instr.srcs = {cond};
  instr.target = label;
  Emit(std::move(instr));
}

Operand FunctionBuilder::Call(const std::string& callee,
                              std::initializer_list<Operand> args,
                              std::uint8_t ret_width) {
  Instruction instr;
  instr.op = Opcode::kCal;
  instr.target = callee;
  instr.srcs.assign(args.begin(), args.end());
  Operand dst;
  if (ret_width > 0) {
    dst = NewReg(ret_width);
    instr.dsts.push_back(dst);
  }
  Emit(std::move(instr));
  return dst;
}

void FunctionBuilder::CallVoid(const std::string& callee,
                               std::initializer_list<Operand> args) {
  Call(callee, args, 0);
}

void FunctionBuilder::Ret() {
  Instruction instr;
  instr.op = Opcode::kRet;
  Emit(std::move(instr));
}

void FunctionBuilder::Ret(Operand value) {
  Instruction instr;
  instr.op = Opcode::kRet;
  instr.srcs = {value};
  Emit(std::move(instr));
}

void FunctionBuilder::Exit() {
  Instruction instr;
  instr.op = Opcode::kExit;
  Emit(std::move(instr));
}

void FunctionBuilder::Bar() {
  Instruction instr;
  instr.op = Opcode::kBar;
  Emit(std::move(instr));
}

FunctionBuilder::Loop FunctionBuilder::LoopBegin(Operand begin, Operand end,
                                                 Operand step) {
  Loop loop;
  loop.induction = Mov(begin, 1);
  loop.bound = end.IsReg() ? end : Mov(end, 1);
  loop.step_val = step.IsReg() ? step : Mov(step, 1);
  loop.head = NewLabel("loop");
  loop.exit = NewLabel("exit");
  Bind(loop.head);
  const Operand cond = Setp(CmpKind::kLt, loop.induction, loop.bound);
  Brz(cond, loop.exit);
  return loop;
}

void FunctionBuilder::LoopEnd(Loop& loop) {
  // induction += step; loop back.  The Mov-free in-place add keeps the
  // induction variable a single long-lived virtual register.
  Instruction add;
  add.op = Opcode::kIAdd;
  add.dsts.push_back(loop.induction);
  add.srcs = {loop.induction, loop.step_val};
  Emit(std::move(add));
  Bra(loop.head);
  Bind(loop.exit);
}

ModuleBuilder::ModuleBuilder(std::string name) { module_.name = std::move(name); }

void ModuleBuilder::SetLaunch(std::uint32_t block_dim, std::uint32_t grid_dim,
                              std::uint32_t param_words) {
  module_.launch.block_dim = block_dim;
  module_.launch.grid_dim = grid_dim;
  module_.launch.param_words = param_words;
}

void ModuleBuilder::SetUserSmemBytes(std::uint32_t bytes) {
  module_.user_smem_bytes = bytes;
}

FunctionBuilder ModuleBuilder::AddKernel(const std::string& name) {
  Function func;
  func.name = name;
  func.is_kernel = true;
  module_.functions.push_back(std::move(func));
  return FunctionBuilder(this, module_.functions.size() - 1);
}

FunctionBuilder ModuleBuilder::AddFunction(
    const std::string& name, const std::vector<std::uint8_t>& param_widths,
    std::uint8_t ret_width, std::vector<Operand>* params_out) {
  Function func;
  func.name = name;
  func.is_kernel = false;
  func.ret_width = ret_width;
  for (const std::uint8_t width : param_widths) {
    func.params.push_back(Operand::VReg(next_vreg_++, width));
  }
  if (params_out != nullptr) {
    *params_out = func.params;
  }
  module_.functions.push_back(std::move(func));
  return FunctionBuilder(this, module_.functions.size() - 1);
}

Module ModuleBuilder::Build() {
  VerifyModuleOrThrow(module_);
  return std::move(module_);
}

std::string AddFdivIntrinsic(ModuleBuilder& mb) {
  const std::string name = "__fdiv";
  if (mb.module().FindFunction(name) != nullptr) {
    return name;
  }
  std::vector<Operand> params;
  FunctionBuilder fb = mb.AddFunction(name, {1, 1}, 1, &params);
  // q = a * rcp(b), one Newton-Raphson refinement:
  //   r = rcp(b); r = r * (2 - b * r); q = a * r
  const Operand a = params[0];
  const Operand b = params[1];
  const Operand r0 = fb.FRcp(b);
  const Operand br = fb.FMul(b, r0);
  const Operand two_minus = fb.FAdd(Operand::FImm(2.0f),
                                    fb.FMul(br, Operand::FImm(-1.0f)));
  const Operand r1 = fb.FMul(r0, two_minus);
  const Operand q = fb.FMul(a, r1);
  fb.Ret(q);
  return name;
}

}  // namespace orion::isa
