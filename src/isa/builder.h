// Fluent construction of virtual-ISA modules.
//
// Used by the synthetic workload library and by tests to write kernels
// the way one writes CUDA: values are opaque handles (virtual registers),
// control flow is expressed with labels, and calls are expressed against
// function signatures.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace orion::isa {

class ModuleBuilder;

// Builds one function.  Obtain via ModuleBuilder::AddKernel/AddFunction.
class FunctionBuilder {
 public:
  using V = Operand;

  // Fresh virtual register of the given width (in 32-bit words).
  V NewReg(std::uint8_t width = 1);

  // Label management.  NewLabel only reserves a name; Bind attaches it to
  // the next emitted instruction.
  std::string NewLabel(const std::string& hint = "L");
  void Bind(const std::string& label);

  // Raw emission (returns the instruction index).
  std::uint32_t Emit(Instruction instr);

  // ALU helpers; each returns the destination handle.
  V Mov(V src, std::uint8_t width = 1);
  V IAdd(V a, V b);
  V ISub(V a, V b);
  V IMul(V a, V b);
  V IMad(V a, V b, V c);
  V IMin(V a, V b);
  V IMax(V a, V b);
  V And(V a, V b);
  V Or(V a, V b);
  V Xor(V a, V b);
  V Shl(V a, V b);
  V Shr(V a, V b);
  V FAdd(V a, V b);
  V FMul(V a, V b);
  V FFma(V a, V b, V c);
  V FMin(V a, V b);
  V FMax(V a, V b);
  V FSqrt(V a);
  V FRcp(V a);
  V FExp(V a);
  V Setp(CmpKind cmp, V a, V b, CmpType type = CmpType::kInt);
  V Sel(V cond, V a, V b);
  V S2R(SpecialReg sreg);

  // Wide-register variants of binary float ops (element-wise SIMD).
  V FAddW(V a, V b, std::uint8_t width);
  V FMulW(V a, V b, std::uint8_t width);

  // Memory.
  V LdGlobal(V addr, std::int64_t offset_bytes, std::uint8_t width = 1,
             std::uint16_t stride = 1);
  void StGlobal(V addr, std::int64_t offset_bytes, V value,
                std::uint16_t stride = 1);
  V LdShared(V addr, std::int64_t offset_bytes, std::uint8_t width = 1);
  void StShared(V addr, std::int64_t offset_bytes, V value);
  V LdParam(std::uint32_t index);

  // Control flow.
  void Bra(const std::string& label);
  void Brz(V cond, const std::string& label);
  void Brnz(V cond, const std::string& label);
  V Call(const std::string& callee, std::initializer_list<V> args,
         std::uint8_t ret_width = 0);
  void CallVoid(const std::string& callee, std::initializer_list<V> args);
  void Ret();
  void Ret(V value);
  void Exit();
  void Bar();

  // Structured counted loop: i from `begin` to `end` (exclusive) step
  // `step`.  Returns the induction variable; the body runs between
  // LoopBegin and LoopEnd.
  struct Loop {
    V induction;
    std::string head;
    std::string exit;
    V bound;
    V step_val;
  };
  Loop LoopBegin(V begin, V end, V step);
  void LoopEnd(Loop& loop);

 private:
  friend class ModuleBuilder;
  FunctionBuilder(ModuleBuilder* parent, std::size_t func_index)
      : parent_(parent), func_index_(func_index) {}

  V EmitAlu(Opcode op, std::uint8_t width, std::vector<V> srcs);
  Function& func();

  ModuleBuilder* parent_;
  std::size_t func_index_;  // stable across module_.functions growth
  std::vector<std::string> pending_labels_;
  int next_label_ = 0;
};

class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name);

  // Launch geometry for the kernel.
  void SetLaunch(std::uint32_t block_dim, std::uint32_t grid_dim,
                 std::uint32_t param_words = 8);
  void SetUserSmemBytes(std::uint32_t bytes);

  FunctionBuilder AddKernel(const std::string& name);
  FunctionBuilder AddFunction(const std::string& name,
                              const std::vector<std::uint8_t>& param_widths,
                              std::uint8_t ret_width,
                              std::vector<Operand>* params_out);

  // Finalize: flush pending labels, verify, and return the module.
  Module Build();

  // Access during construction (for tests).
  Module& module() { return module_; }

 private:
  friend class FunctionBuilder;
  Module module_;
  std::uint32_t next_vreg_ = 0;
};

// Adds the floating point division intrinsic `__fdiv(a, b)` (Newton
// refinement around FRCP) to the module and returns its name.  SASS
// implements float division as a function call; workloads that divide
// call this to get the paper-faithful static call sites.
std::string AddFdivIntrinsic(ModuleBuilder& mb);

}  // namespace orion::isa
