// Textual assembly for the Orion virtual ISA.
//
// The Orion compiler front end in the paper converts a GPU binary into
// assembly text, analyzes it, transforms it, and the back end encodes it
// back to binary.  This module provides the text layer: a printer
// (disassembler) and a parser (assembler) with exact round-trip fidelity.
//
// Grammar (line oriented; '#' introduces immediates, ';' comments):
//
//   .module <name>
//   .launch blockdim=<n> griddim=<n> params=<n>
//   .smem <bytes>
//   .kernel <name> | .func <name>
//   <label>:
//   <MNEMONIC>[.<suffixes>] operands...
//   .end
//
// Operands:  vN[.w]  rN[.w]  #int  #0xhex  #f:float  TID|BID|BDIM|...
// Memory:    LD.<space> dst, [addr + #off] [stride=<n>]
//            ST.<space> [addr + #off], value [stride=<n>]
#pragma once

#include <string>
#include <string_view>

#include "isa/isa.h"

namespace orion::isa {

// Render a whole module as assembly text.
std::string PrintModule(const Module& module);

// Render a single instruction (no trailing newline).
std::string PrintInstruction(const Instruction& instr);

// Parse assembly text into a module.  Throws DecodeError on malformed
// input with a line-number diagnostic.
Module ParseModule(std::string_view text);

}  // namespace orion::isa
