#include "isa/verifier.h"

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "telemetry/telemetry.h"

namespace orion::isa {

namespace {

// Alignment requirement for a wide register operand: 64-bit values on
// even registers, 96/128-bit on multiples of four (NVIDIA rule).
std::uint32_t WidthAlignment(std::uint8_t width) {
  if (width >= 3) return 4;
  return width;
}

class Verifier {
 public:
  Verifier(const Module& module, const VerifyOptions& options)
      : module_(module), options_(options) {}

  std::vector<std::string> Run() {
    int kernels = 0;
    for (const Function& func : module_.functions) {
      kernels += func.is_kernel ? 1 : 0;
    }
    if (kernels != 1) {
      Report("module", "expected exactly one kernel, found %d", kernels);
    }
    std::set<std::string> names;
    for (const Function& func : module_.functions) {
      if (!names.insert(func.name).second) {
        Report(func.name.c_str(), "duplicate function name");
      }
    }
    for (const Function& func : module_.functions) {
      CheckFunction(func);
    }
    CheckCallGraphAcyclic();
    return std::move(failures_);
  }

 private:
  void Report(const char* where, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    failures_.push_back(std::string(where) + ": " + buf);
  }

  void CheckOperandState(const Function& func, const Operand& op,
                         const char* where) {
    if (op.kind == OperandKind::kVReg && func.allocated) {
      Report(func.name.c_str(), "%s: virtual register in allocated function", where);
    }
    if (op.kind == OperandKind::kPReg && !func.allocated) {
      Report(func.name.c_str(), "%s: physical register in unallocated function", where);
    }
    if (op.IsReg()) {
      if (op.width < 1 || op.width > 4) {
        Report(func.name.c_str(), "%s: bad register width %u", where, op.width);
      }
      if (op.kind == OperandKind::kPReg) {
        if (op.id % WidthAlignment(op.width) != 0) {
          Report(func.name.c_str(), "%s: misaligned wide register r%u.%u", where,
                 op.id, op.width);
        }
        if (options_.reg_budget != 0 && op.id + op.width > options_.reg_budget) {
          Report(func.name.c_str(), "%s: r%u.%u exceeds register budget %u",
                 where, op.id, op.width, options_.reg_budget);
        }
      }
    }
  }

  void CheckFunction(const Function& func) {
    if (func.instrs.empty()) {
      Report(func.name.c_str(), "empty function");
      return;
    }
    if (func.is_kernel && !func.params.empty()) {
      Report(func.name.c_str(), "kernels take no parameters");
    }
    for (const Operand& param : func.params) {
      if (param.kind != OperandKind::kVReg && !func.allocated) {
        Report(func.name.c_str(), "parameter must be a virtual register");
      }
    }
    for (const auto& [label, index] : func.labels) {
      if (index > func.NumInstrs()) {
        Report(func.name.c_str(), "label '%s' out of range", label.c_str());
      }
    }
    if (!IsTerminator(func.instrs.back().op)) {
      Report(func.name.c_str(), "function does not end with a terminator");
    }

    for (std::uint32_t i = 0; i < func.NumInstrs(); ++i) {
      const Instruction& instr = func.instrs[i];
      const std::string where = StrFormat("instr %u (%s)", i, OpcodeName(instr.op));
      for (const Operand& op : instr.dsts) {
        CheckOperandState(func, op, where.c_str());
        if (!op.IsReg()) {
          Report(func.name.c_str(), "%s: destination must be a register",
                 where.c_str());
        }
      }
      for (const Operand& op : instr.srcs) {
        CheckOperandState(func, op, where.c_str());
      }
      CheckShape(func, instr, where.c_str());
    }
  }

  void CheckShape(const Function& func, const Instruction& instr,
                  const char* where) {
    auto expect = [&](bool ok, const char* what) {
      if (!ok) {
        Report(func.name.c_str(), "%s: %s", where, what);
      }
    };
    switch (instr.op) {
      case Opcode::kNop:
      case Opcode::kBar:
        expect(instr.dsts.empty() && instr.srcs.empty(), "expects no operands");
        break;
      case Opcode::kExit:
        expect(instr.dsts.empty() && instr.srcs.empty(), "expects no operands");
        expect(func.is_kernel || func.allocated,
               "EXIT only allowed in kernel functions");
        break;
      case Opcode::kMov:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 1,
               "expects dst, src");
        break;
      case Opcode::kIAdd:
      case Opcode::kISub:
      case Opcode::kIMul:
      case Opcode::kIMin:
      case Opcode::kIMax:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kFAdd:
      case Opcode::kFMul:
      case Opcode::kFMin:
      case Opcode::kFMax:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 2,
               "expects dst, a, b");
        break;
      case Opcode::kIMad:
      case Opcode::kFFma:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 3,
               "expects dst, a, b, c");
        break;
      case Opcode::kFSqrt:
      case Opcode::kFRcp:
      case Opcode::kFExp:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 1,
               "expects dst, src");
        break;
      case Opcode::kSetp:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 2,
               "expects dst, a, b");
        if (!instr.dsts.empty()) {
          expect(instr.Dst().width == 1, "predicate register must be 1 word");
        }
        break;
      case Opcode::kSel:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 3,
               "expects dst, cond, a, b");
        break;
      case Opcode::kS2R:
        expect(instr.dsts.size() == 1 && instr.srcs.size() == 1 &&
                   instr.srcs[0].kind == OperandKind::kSpecial,
               "expects dst, special-register");
        break;
      case Opcode::kLd:
      case Opcode::kSt: {
        const bool is_load = instr.op == Opcode::kLd;
        const std::size_t want_srcs = is_load ? 2 : 3;
        expect(instr.dsts.size() == (is_load ? 1u : 0u) &&
                   instr.srcs.size() == want_srcs,
               "bad memory operand shape");
        if (instr.srcs.size() == want_srcs) {
          const Operand& addr = instr.srcs[0];
          const Operand& offset = instr.srcs[1];
          expect(offset.kind == OperandKind::kImm, "offset must be immediate");
          switch (instr.space) {
            case MemSpace::kGlobal:
            case MemSpace::kShared:
              expect(addr.IsReg() && addr.width == 1,
                     "global/shared address must be a 1-word register");
              break;
            case MemSpace::kSharedPriv:
            case MemSpace::kLocal:
            case MemSpace::kParam: {
              expect(addr.kind == OperandKind::kImm,
                     "slot-space address must be an immediate slot index");
              expect(instr.space != MemSpace::kParam || is_load,
                     "parameter space is read-only");
              if (addr.kind == OperandKind::kImm) {
                expect(addr.imm >= 0, "slot index must be non-negative");
                // A wide access touches [slot, slot + width): the whole
                // span must fit the allocator's reservation.
                const std::uint8_t access_width =
                    is_load ? (instr.dsts.empty() ? std::uint8_t{1}
                                                  : instr.Dst().width)
                            : (instr.srcs[2].IsReg() ? instr.srcs[2].width
                                                     : std::uint8_t{1});
                const std::uint32_t budget =
                    instr.space == MemSpace::kLocal
                        ? options_.local_slot_budget
                        : instr.space == MemSpace::kSharedPriv
                              ? options_.spriv_slot_budget
                              : 0;
                if (budget != 0 && addr.imm >= 0 &&
                    static_cast<std::uint64_t>(addr.imm) + access_width >
                        budget) {
                  Report(func.name.c_str(),
                         "%s: slot %lld.%u exceeds %s budget %u", where,
                         static_cast<long long>(addr.imm), access_width,
                         instr.space == MemSpace::kLocal ? "local" : "spriv",
                         budget);
                }
              }
              break;
            }
          }
        }
        break;
      }
      case Opcode::kBra:
      case Opcode::kBrz:
      case Opcode::kBrnz: {
        expect(instr.dsts.empty(), "branch has no destination");
        expect(instr.op == Opcode::kBra ? instr.srcs.empty()
                                        : instr.srcs.size() == 1,
               "bad branch operand count");
        if (!func.labels.contains(instr.target)) {
          Report(func.name.c_str(), "%s: unknown label '%s'", where,
                 instr.target.c_str());
        }
        break;
      }
      case Opcode::kCal: {
        const Function* callee = module_.FindFunction(instr.target);
        if (callee == nullptr) {
          Report(func.name.c_str(), "%s: unknown callee '%s'", where,
                 instr.target.c_str());
          break;
        }
        expect(!callee->is_kernel, "cannot call a kernel");
        if (!func.allocated) {
          expect(instr.srcs.size() == callee->params.size(),
                 "argument count mismatch");
          for (std::size_t i = 0;
               i < std::min(instr.srcs.size(), callee->params.size()); ++i) {
            const std::uint8_t want = callee->params[i].width;
            const std::uint8_t got =
                instr.srcs[i].IsReg() ? instr.srcs[i].width : 1;
            if (want != got) {
              Report(func.name.c_str(), "%s: argument %zu width %u != %u", where,
                     i, got, want);
            }
          }
          if (callee->ret_width == 0) {
            expect(instr.dsts.empty(), "void callee cannot produce a result");
          } else if (instr.dsts.size() == 1) {
            expect(instr.Dst().width == callee->ret_width,
                   "result width mismatch");
          }
        }
        break;
      }
      case Opcode::kRet: {
        expect(!func.is_kernel, "RET not allowed in kernels (use EXIT)");
        if (!func.allocated) {
          if (func.ret_width == 0) {
            expect(instr.srcs.empty(), "void function cannot return a value");
          } else {
            expect(instr.srcs.size() == 1, "function must return its value");
            if (instr.srcs.size() == 1 && instr.srcs[0].IsReg()) {
              expect(instr.srcs[0].width == func.ret_width,
                     "return width mismatch");
            }
          }
        }
        break;
      }
      default:
        break;
    }
  }

  void CheckCallGraphAcyclic() {
    // Colors: 0 = unvisited, 1 = on stack, 2 = done.
    std::map<std::string, int> color;
    std::function<void(const Function&)> dfs = [&](const Function& func) {
      color[func.name] = 1;
      for (const Instruction& instr : func.instrs) {
        if (instr.op != Opcode::kCal) {
          continue;
        }
        const Function* callee = module_.FindFunction(instr.target);
        if (callee == nullptr) {
          continue;  // reported elsewhere
        }
        const int c = color[callee->name];
        if (c == 1) {
          Report(func.name.c_str(), "recursive call chain through '%s'",
                 callee->name.c_str());
        } else if (c == 0) {
          dfs(*callee);
        }
      }
      color[func.name] = 2;
    };
    for (const Function& func : module_.functions) {
      if (color[func.name] == 0) {
        dfs(func);
      }
    }
  }

  const Module& module_;
  const VerifyOptions& options_;
  std::vector<std::string> failures_;
};

}  // namespace

std::vector<std::string> VerifyModule(const Module& module,
                                      const VerifyOptions& options) {
  ORION_TRACE_SPAN("compiler", "isa.verify");
  return Verifier(module, options).Run();
}

void VerifyModuleOrThrow(const Module& module, const VerifyOptions& options) {
  const std::vector<std::string> failures = VerifyModule(module, options);
  if (failures.empty()) {
    return;
  }
  // Each failure is a leveled diagnostic first; the thrown error keeps
  // the aggregate message for callers that catch and report.
  for (const std::string& failure : failures) {
    ORION_LOG(DEBUG) << "verify '" << module.name << "': " << failure;
  }
  std::ostringstream oss;
  oss << "module '" << module.name << "' failed verification:";
  for (const std::string& failure : failures) {
    oss << "\n  " << failure;
  }
  throw CompileError(oss.str());
}

}  // namespace orion::isa
