// Virtual GPU binary ("VCUB") encoder/decoder.
//
// Plays the role asfermi plays in the paper: the Orion front end takes a
// GPU binary file as input and decodes it; the back end re-encodes the
// transformed program.  The format is a compact little-endian
// serialization with a string table, a header carrying launch geometry
// and resource usage, and variable-length instruction records.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace orion::isa {

// Serialize a module to a binary image.
std::vector<std::uint8_t> EncodeModule(const Module& module);

// Deserialize.  Throws DecodeError on corrupt input (bad magic, truncated
// records, out-of-range enums, dangling string references).
Module DecodeModule(const std::vector<std::uint8_t>& bytes);

}  // namespace orion::isa
