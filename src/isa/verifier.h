// Structural verification of virtual-ISA modules.
//
// The verifier enforces the invariants the compiler passes rely on:
// operand shapes per opcode, resolvable branch targets, an acyclic call
// graph (GPU device functions may not recurse under the compressible
// stack discipline), terminated control flow, and — for allocated
// functions — physical register bounds and wide-register alignment.
#pragma once

#include <string>
#include <vector>

#include "isa/isa.h"

namespace orion::isa {

struct VerifyOptions {
  // When set, allocated functions are additionally checked against this
  // register budget (operand id + width <= budget).
  std::uint32_t reg_budget = 0;
  // When set, LOCAL / SHARED-PRIV slot accesses are checked against the
  // per-thread slot counts the allocator reserved (slot + access width
  // <= budget).  Zero disables the check (virtual modules carry no slot
  // usage).
  std::uint32_t local_slot_budget = 0;
  std::uint32_t spriv_slot_budget = 0;
};

// Returns the list of verification failures (empty means the module is
// well formed).  Each entry is a human-readable diagnostic.
std::vector<std::string> VerifyModule(const Module& module,
                                      const VerifyOptions& options = {});

// Convenience wrapper: throws CompileError listing all failures.
void VerifyModuleOrThrow(const Module& module, const VerifyOptions& options = {});

}  // namespace orion::isa
