#include "isa/assembler.h"

#include <bit>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace orion::isa {

namespace {

std::string PrintOperand(const Operand& op) {
  switch (op.kind) {
    case OperandKind::kNone:
      return "<none>";
    case OperandKind::kVReg:
      return op.width == 1 ? StrFormat("v%u", op.id)
                           : StrFormat("v%u.%u", op.id, op.width);
    case OperandKind::kPReg:
      return op.width == 1 ? StrFormat("r%u", op.id)
                           : StrFormat("r%u.%u", op.id, op.width);
    case OperandKind::kImm:
      return StrFormat("#%lld", static_cast<long long>(op.imm));
    case OperandKind::kSpecial:
      return SpecialRegName(op.sreg);
  }
  return "<bad>";
}

std::optional<MemSpace> MemSpaceFromSuffix(std::string_view suffix) {
  if (suffix == "G") return MemSpace::kGlobal;
  if (suffix == "S") return MemSpace::kShared;
  if (suffix == "SP") return MemSpace::kSharedPriv;
  if (suffix == "L") return MemSpace::kLocal;
  if (suffix == "P") return MemSpace::kParam;
  return std::nullopt;
}

[[noreturn]] void Fail(std::size_t line_no, const std::string& message) {
  throw DecodeError(StrFormat("asm line %zu: %s", line_no, message.c_str()));
}

// Parses "v12.2", "r5", "#-3", "TID" etc.
Operand ParseOperand(std::string_view token, std::size_t line_no) {
  if (token.empty()) {
    Fail(line_no, "empty operand");
  }
  if (token.front() == 'v' || token.front() == 'r') {
    const bool physical = token.front() == 'r';
    std::string_view body = token.substr(1);
    std::uint8_t width = 1;
    const std::size_t dot = body.find('.');
    if (dot != std::string_view::npos) {
      std::int64_t w = 0;
      if (!ParseInt(body.substr(dot + 1), &w) || w < 1 || w > 4) {
        Fail(line_no, "bad register width in '" + std::string(token) + "'");
      }
      width = static_cast<std::uint8_t>(w);
      body = body.substr(0, dot);
    }
    std::int64_t id = 0;
    if (!ParseInt(body, &id) || id < 0) {
      Fail(line_no, "bad register id in '" + std::string(token) + "'");
    }
    return physical ? Operand::PReg(static_cast<std::uint32_t>(id), width)
                    : Operand::VReg(static_cast<std::uint32_t>(id), width);
  }
  if (token.front() == '#') {
    std::string_view body = token.substr(1);
    if (StartsWith(body, "f:")) {
      double value = 0;
      if (!ParseDouble(body.substr(2), &value)) {
        Fail(line_no, "bad float immediate '" + std::string(token) + "'");
      }
      return Operand::FImm(static_cast<float>(value));
    }
    std::int64_t value = 0;
    if (!ParseInt(body, &value)) {
      Fail(line_no, "bad immediate '" + std::string(token) + "'");
    }
    return Operand::Imm(value);
  }
  if (auto sreg = SpecialRegFromName(token)) {
    return Operand::Special(*sreg);
  }
  Fail(line_no, "unrecognized operand '" + std::string(token) + "'");
}

}  // namespace

std::string PrintInstruction(const Instruction& instr) {
  std::ostringstream oss;
  oss << OpcodeName(instr.op);
  if (instr.op == Opcode::kSetp) {
    oss << '.' << CmpKindName(instr.cmp);
    if (instr.cmp_type == CmpType::kFloat) {
      oss << ".F";
    }
  }
  if (IsMemory(instr.op)) {
    oss << '.' << MemSpaceSuffix(instr.space);
  }
  bool first = true;
  auto emit = [&](const std::string& text) {
    oss << (first ? " " : ", ") << text;
    first = false;
  };
  if (instr.op == Opcode::kLd) {
    emit(PrintOperand(instr.Dst()));
    emit("[" + PrintOperand(instr.srcs[0]) + " + " + PrintOperand(instr.srcs[1]) + "]");
  } else if (instr.op == Opcode::kSt) {
    emit("[" + PrintOperand(instr.srcs[0]) + " + " + PrintOperand(instr.srcs[1]) + "]");
    emit(PrintOperand(instr.srcs[2]));
  } else if (instr.op == Opcode::kCal) {
    oss << ' ' << instr.target << '(';
    for (std::size_t i = 0; i < instr.srcs.size(); ++i) {
      oss << (i == 0 ? "" : ", ") << PrintOperand(instr.srcs[i]);
    }
    oss << ')';
    if (instr.HasDst()) {
      oss << " -> " << PrintOperand(instr.Dst());
    }
    return oss.str();
  } else {
    for (const Operand& op : instr.dsts) {
      emit(PrintOperand(op));
    }
    for (const Operand& op : instr.srcs) {
      emit(PrintOperand(op));
    }
  }
  if (!instr.target.empty()) {
    emit(instr.target);
  }
  if (IsMemory(instr.op) && instr.space == MemSpace::kGlobal && instr.stride != 1) {
    oss << " stride=" << instr.stride;
  }
  return oss.str();
}

std::string PrintModule(const Module& module) {
  std::ostringstream oss;
  oss << ".module " << module.name << '\n';
  oss << ".launch blockdim=" << module.launch.block_dim
      << " griddim=" << module.launch.grid_dim
      << " params=" << module.launch.param_words << '\n';
  oss << ".smem " << module.user_smem_bytes << '\n';
  for (const Function& func : module.functions) {
    oss << (func.is_kernel ? ".kernel " : ".func ") << func.name << '\n';
    if (!func.params.empty()) {
      oss << ".params";
      for (std::size_t i = 0; i < func.params.size(); ++i) {
        oss << (i == 0 ? " " : ", ") << PrintOperand(func.params[i]);
      }
      oss << '\n';
    }
    if (func.ret_width != 0) {
      oss << ".ret " << static_cast<unsigned>(func.ret_width) << '\n';
    }
    // Invert the label map: instruction index -> labels.
    std::multimap<std::uint32_t, std::string> by_index;
    for (const auto& [label, index] : func.labels) {
      by_index.emplace(index, label);
    }
    for (std::uint32_t i = 0; i <= func.NumInstrs(); ++i) {
      auto [begin, end] = by_index.equal_range(i);
      for (auto it = begin; it != end; ++it) {
        oss << it->second << ":\n";
      }
      if (i < func.NumInstrs()) {
        oss << "  " << PrintInstruction(func.instrs[i]) << '\n';
      }
    }
    oss << ".end\n";
  }
  return oss.str();
}

Module ParseModule(std::string_view text) {
  Module module;
  Function* func = nullptr;
  bool saw_module = false;

  const std::vector<std::string_view> lines = SplitLines(text);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::size_t line_no = li + 1;
    std::string_view line = lines[li];
    const std::size_t comment = line.find(';');
    if (comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }

    if (line.front() == '.') {
      const std::vector<std::string_view> words = SplitTokens(line, " \t");
      const std::string_view directive = words[0];
      if (directive == ".module") {
        if (words.size() != 2) Fail(line_no, ".module expects a name");
        module.name = std::string(words[1]);
        saw_module = true;
      } else if (directive == ".launch") {
        for (std::size_t i = 1; i < words.size(); ++i) {
          const std::size_t eq = words[i].find('=');
          if (eq == std::string_view::npos) Fail(line_no, "bad .launch parameter");
          const std::string_view key = words[i].substr(0, eq);
          std::int64_t value = 0;
          if (!ParseInt(words[i].substr(eq + 1), &value) || value < 0) {
            Fail(line_no, "bad .launch value");
          }
          if (key == "blockdim") {
            module.launch.block_dim = static_cast<std::uint32_t>(value);
          } else if (key == "griddim") {
            module.launch.grid_dim = static_cast<std::uint32_t>(value);
          } else if (key == "params") {
            module.launch.param_words = static_cast<std::uint32_t>(value);
          } else {
            Fail(line_no, "unknown .launch key '" + std::string(key) + "'");
          }
        }
      } else if (directive == ".smem") {
        std::int64_t value = 0;
        if (words.size() != 2 || !ParseInt(words[1], &value) || value < 0) {
          Fail(line_no, ".smem expects a byte count");
        }
        module.user_smem_bytes = static_cast<std::uint32_t>(value);
      } else if (directive == ".kernel" || directive == ".func") {
        if (words.size() != 2) Fail(line_no, directive.data() + std::string(" expects a name"));
        module.functions.emplace_back();
        func = &module.functions.back();
        func->name = std::string(words[1]);
        func->is_kernel = directive == ".kernel";
      } else if (directive == ".params") {
        if (func == nullptr) Fail(line_no, ".params outside a function");
        const std::string_view rest = Trim(line.substr(directive.size()));
        for (std::string_view token : SplitTokens(rest, ", \t")) {
          func->params.push_back(ParseOperand(token, line_no));
        }
      } else if (directive == ".ret") {
        if (func == nullptr) Fail(line_no, ".ret outside a function");
        std::int64_t value = 0;
        if (words.size() != 2 || !ParseInt(words[1], &value) || value < 0 ||
            value > 4) {
          Fail(line_no, ".ret expects a width in [0,4]");
        }
        func->ret_width = static_cast<std::uint8_t>(value);
      } else if (directive == ".end") {
        func = nullptr;
      } else {
        Fail(line_no, "unknown directive '" + std::string(directive) + "'");
      }
      continue;
    }

    if (line.back() == ':') {
      if (func == nullptr) Fail(line_no, "label outside a function");
      const std::string label(Trim(line.substr(0, line.size() - 1)));
      if (label.empty()) Fail(line_no, "empty label");
      if (!func->labels.emplace(label, func->NumInstrs()).second) {
        Fail(line_no, "duplicate label '" + label + "'");
      }
      continue;
    }

    if (func == nullptr) Fail(line_no, "instruction outside a function");

    // Pull out a trailing "stride=N" annotation before tokenizing operands.
    std::uint16_t stride = 1;
    {
      const std::size_t pos = line.rfind("stride=");
      if (pos != std::string_view::npos) {
        std::int64_t value = 0;
        if (!ParseInt(Trim(line.substr(pos + 7)), &value) || value < 0 ||
            value > 0xFFFF) {
          Fail(line_no, "bad stride annotation");
        }
        stride = static_cast<std::uint16_t>(value);
        line = Trim(line.substr(0, pos));
      }
    }

    // Mnemonic (with dotted suffixes) is the first whitespace token.
    const std::size_t sp = line.find_first_of(" \t");
    const std::string_view mnemonic =
        sp == std::string_view::npos ? line : line.substr(0, sp);
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : Trim(line.substr(sp));

    std::vector<std::string_view> parts = SplitTokens(mnemonic, ".");
    if (parts.empty()) Fail(line_no, "missing mnemonic");
    const auto opcode = OpcodeFromName(parts[0]);
    if (!opcode) Fail(line_no, "unknown opcode '" + std::string(parts[0]) + "'");

    Instruction instr;
    instr.op = *opcode;
    instr.stride = stride;
    if (instr.op == Opcode::kSetp) {
      if (parts.size() < 2) Fail(line_no, "SETP requires a comparison suffix");
      const auto cmp = CmpKindFromName(parts[1]);
      if (!cmp) Fail(line_no, "bad comparison '" + std::string(parts[1]) + "'");
      instr.cmp = *cmp;
      if (parts.size() == 3 && parts[2] == "F") {
        instr.cmp_type = CmpType::kFloat;
      } else if (parts.size() > 2) {
        Fail(line_no, "bad SETP suffix");
      }
    } else if (IsMemory(instr.op)) {
      if (parts.size() != 2) Fail(line_no, "memory op requires a space suffix");
      const auto space = MemSpaceFromSuffix(parts[1]);
      if (!space) Fail(line_no, "bad memory space '" + std::string(parts[1]) + "'");
      instr.space = *space;
    } else if (parts.size() != 1) {
      Fail(line_no, "unexpected mnemonic suffix");
    }

    // CAL uses call syntax: CAL callee(arg, ...) [-> dst].
    if (instr.op == Opcode::kCal) {
      const std::size_t open = rest.find('(');
      const std::size_t close = rest.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        Fail(line_no, "CAL expects callee(args...) [-> dst]");
      }
      instr.target = std::string(Trim(rest.substr(0, open)));
      if (instr.target.empty()) Fail(line_no, "CAL missing callee name");
      const std::string_view args = Trim(rest.substr(open + 1, close - open - 1));
      for (std::string_view token : SplitTokens(args, ", \t")) {
        instr.srcs.push_back(ParseOperand(token, line_no));
      }
      std::string_view tail = Trim(rest.substr(close + 1));
      if (!tail.empty()) {
        if (!StartsWith(tail, "->")) Fail(line_no, "bad CAL result syntax");
        instr.dsts.push_back(ParseOperand(Trim(tail.substr(2)), line_no));
      }
      func->instrs.push_back(std::move(instr));
      continue;
    }

    // Operand scanning.  Memory operands use bracket syntax, so handle
    // brackets before falling back to comma-separated tokens.
    std::vector<std::string> tokens;
    {
      std::string current;
      int bracket_depth = 0;
      for (const char c : rest) {
        if (c == '[') ++bracket_depth;
        if (c == ']') --bracket_depth;
        if (c == ',' && bracket_depth == 0) {
          tokens.emplace_back(Trim(current));
          current.clear();
        } else {
          current.push_back(c);
        }
      }
      if (!Trim(current).empty()) {
        tokens.emplace_back(Trim(current));
      }
      if (bracket_depth != 0) Fail(line_no, "unbalanced brackets");
    }

    auto parse_address = [&](std::string_view token, Instruction* out) {
      if (token.size() < 2 || token.front() != '[' || token.back() != ']') {
        Fail(line_no, "expected [addr] operand, got '" + std::string(token) + "'");
      }
      const std::string_view inner = Trim(token.substr(1, token.size() - 2));
      const std::size_t plus = inner.find('+');
      if (plus == std::string_view::npos) {
        out->srcs.push_back(ParseOperand(Trim(inner), line_no));
        out->srcs.push_back(Operand::Imm(0));
      } else {
        out->srcs.push_back(ParseOperand(Trim(inner.substr(0, plus)), line_no));
        out->srcs.push_back(ParseOperand(Trim(inner.substr(plus + 1)), line_no));
      }
    };

    switch (instr.op) {
      case Opcode::kLd: {
        if (tokens.size() != 2) Fail(line_no, "LD expects dst, [addr]");
        instr.dsts.push_back(ParseOperand(tokens[0], line_no));
        parse_address(tokens[1], &instr);
        break;
      }
      case Opcode::kSt: {
        if (tokens.size() != 2) Fail(line_no, "ST expects [addr], value");
        parse_address(tokens[0], &instr);
        instr.srcs.push_back(ParseOperand(tokens[1], line_no));
        break;
      }
      case Opcode::kBra: {
        if (tokens.size() != 1) Fail(line_no, "BRA expects a label");
        instr.target = tokens[0];
        break;
      }
      case Opcode::kBrz:
      case Opcode::kBrnz: {
        if (tokens.size() != 2) Fail(line_no, "conditional branch expects cond, label");
        instr.srcs.push_back(ParseOperand(tokens[0], line_no));
        instr.target = tokens[1];
        break;
      }
      case Opcode::kRet: {
        if (tokens.size() > 1) Fail(line_no, "RET takes at most one value");
        if (tokens.size() == 1) {
          instr.srcs.push_back(ParseOperand(tokens[0], line_no));
        }
        break;
      }
      case Opcode::kExit:
      case Opcode::kBar:
      case Opcode::kNop: {
        if (!tokens.empty()) Fail(line_no, "unexpected operands");
        break;
      }
      default: {
        // Generic ALU form: dst, src...
        if (tokens.empty()) Fail(line_no, "missing operands");
        instr.dsts.push_back(ParseOperand(tokens[0], line_no));
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          instr.srcs.push_back(ParseOperand(tokens[i], line_no));
        }
        break;
      }
    }
    func->instrs.push_back(std::move(instr));
  }

  if (!saw_module) {
    throw DecodeError("assembly text missing .module directive");
  }
  return module;
}

}  // namespace orion::isa
