#include "isa/binary.h"

#include <cstring>
#include <map>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/strings.h"
#include "telemetry/telemetry.h"

namespace orion::isa {

namespace {

constexpr std::uint32_t kMagic = 0x56435542;  // "VCUB"
constexpr std::uint16_t kVersion = 3;

class Writer {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(v); }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v));
    U8(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v));
    U16(static_cast<std::uint16_t>(v >> 16));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t U8() {
    Need(1);
    return bytes_[pos_++];
  }
  std::uint16_t U16() {
    const std::uint16_t lo = U8();
    return static_cast<std::uint16_t>(lo | (U8() << 8));
  }
  std::uint32_t U32() {
    const std::uint32_t lo = U16();
    return lo | (static_cast<std::uint32_t>(U16()) << 16);
  }
  std::uint64_t U64() {
    const std::uint64_t lo = U32();
    return lo | (static_cast<std::uint64_t>(U32()) << 32);
  }
  std::string Str() {
    const std::uint32_t len = U32();
    Need(len);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return out;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  void Need(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw DecodeError(StrFormat(
          "truncated virtual binary: need %zu bytes at offset %zu, have %zu",
          n, pos_, bytes_.size()));
    }
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

void EncodeOperand(const Operand& op, Writer* w) {
  w->U8(static_cast<std::uint8_t>(op.kind));
  switch (op.kind) {
    case OperandKind::kNone:
      break;
    case OperandKind::kVReg:
    case OperandKind::kPReg:
      w->U32(op.id);
      w->U8(op.width);
      break;
    case OperandKind::kImm:
      w->U64(static_cast<std::uint64_t>(op.imm));
      break;
    case OperandKind::kSpecial:
      w->U8(static_cast<std::uint8_t>(op.sreg));
      break;
  }
}

Operand DecodeOperand(Reader* r) {
  const std::uint8_t raw_kind = r->U8();
  if (raw_kind > static_cast<std::uint8_t>(OperandKind::kSpecial)) {
    throw DecodeError(StrFormat("bad operand kind %u at offset %zu", raw_kind,
                                r->pos() - 1));
  }
  Operand op;
  op.kind = static_cast<OperandKind>(raw_kind);
  switch (op.kind) {
    case OperandKind::kNone:
      break;
    case OperandKind::kVReg:
    case OperandKind::kPReg: {
      op.id = r->U32();
      op.width = r->U8();
      if (op.width < 1 || op.width > 4) {
        throw DecodeError(StrFormat("bad operand width %u at offset %zu",
                                    op.width, r->pos() - 1));
      }
      break;
    }
    case OperandKind::kImm:
      op.imm = static_cast<std::int64_t>(r->U64());
      break;
    case OperandKind::kSpecial: {
      const std::uint8_t raw = r->U8();
      if (raw > static_cast<std::uint8_t>(SpecialReg::kWarpId)) {
        throw DecodeError(StrFormat("bad special register %u at offset %zu",
                                    raw, r->pos() - 1));
      }
      op.sreg = static_cast<SpecialReg>(raw);
      break;
    }
  }
  return op;
}

void EncodeInstruction(const Instruction& instr, Writer* w) {
  w->U8(static_cast<std::uint8_t>(instr.op));
  w->U8(static_cast<std::uint8_t>(instr.space));
  w->U8(static_cast<std::uint8_t>(instr.cmp));
  w->U8(static_cast<std::uint8_t>(instr.cmp_type));
  w->U16(instr.stride);
  w->U8(static_cast<std::uint8_t>(instr.dsts.size()));
  w->U8(static_cast<std::uint8_t>(instr.srcs.size()));
  for (const Operand& op : instr.dsts) {
    EncodeOperand(op, w);
  }
  for (const Operand& op : instr.srcs) {
    EncodeOperand(op, w);
  }
  w->Str(instr.target);
}

Instruction DecodeInstruction(Reader* r) {
  Instruction instr;
  const std::uint8_t raw_op = r->U8();
  if (raw_op >= static_cast<std::uint8_t>(Opcode::kOpcodeCount)) {
    throw DecodeError(
        StrFormat("bad opcode %u at offset %zu", raw_op, r->pos() - 1));
  }
  instr.op = static_cast<Opcode>(raw_op);
  const std::uint8_t raw_space = r->U8();
  if (raw_space > static_cast<std::uint8_t>(MemSpace::kParam)) {
    throw DecodeError(
        StrFormat("bad memory space %u at offset %zu", raw_space,
                  r->pos() - 1));
  }
  instr.space = static_cast<MemSpace>(raw_space);
  const std::uint8_t raw_cmp = r->U8();
  if (raw_cmp > static_cast<std::uint8_t>(CmpKind::kGt)) {
    throw DecodeError(
        StrFormat("bad comparison kind %u at offset %zu", raw_cmp,
                  r->pos() - 1));
  }
  instr.cmp = static_cast<CmpKind>(raw_cmp);
  const std::uint8_t raw_cmp_type = r->U8();
  if (raw_cmp_type > static_cast<std::uint8_t>(CmpType::kFloat)) {
    throw DecodeError(
        StrFormat("bad comparison type %u at offset %zu", raw_cmp_type,
                  r->pos() - 1));
  }
  instr.cmp_type = static_cast<CmpType>(raw_cmp_type);
  instr.stride = r->U16();
  const std::uint8_t nd = r->U8();
  const std::uint8_t ns = r->U8();
  for (std::uint8_t i = 0; i < nd; ++i) {
    instr.dsts.push_back(DecodeOperand(r));
  }
  for (std::uint8_t i = 0; i < ns; ++i) {
    instr.srcs.push_back(DecodeOperand(r));
  }
  instr.target = r->Str();
  return instr;
}

}  // namespace

std::vector<std::uint8_t> EncodeModule(const Module& module) {
  telemetry::ScopedSpan span("compiler", "isa.encode");
  span.AddArg("kernel", module.name);
  Writer w;
  w.U32(kMagic);
  w.U16(kVersion);
  w.Str(module.name);
  w.U32(module.launch.block_dim);
  w.U32(module.launch.grid_dim);
  w.U32(module.launch.param_words);
  w.U32(module.user_smem_bytes);
  w.U32(module.usage.regs_per_thread);
  w.U32(module.usage.local_slots_per_thread);
  w.U32(module.usage.spriv_slots_per_thread);
  w.U32(module.usage.user_smem_bytes_per_block);
  w.U32(static_cast<std::uint32_t>(module.functions.size()));
  for (const Function& func : module.functions) {
    w.Str(func.name);
    w.U8(func.is_kernel ? 1 : 0);
    w.U8(func.allocated ? 1 : 0);
    w.U8(func.ret_width);
    w.U8(static_cast<std::uint8_t>(func.params.size()));
    for (const Operand& param : func.params) {
      EncodeOperand(param, &w);
    }
    w.U32(func.frame_regs);
    w.U32(static_cast<std::uint32_t>(func.labels.size()));
    for (const auto& [label, index] : func.labels) {
      w.Str(label);
      w.U32(index);
    }
    w.U32(func.NumInstrs());
    for (const Instruction& instr : func.instrs) {
      EncodeInstruction(instr, &w);
    }
  }
  return w.Take();
}

namespace {

Module DecodeModuleBytes(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const std::uint32_t magic = r.U32();
  if (magic != kMagic) {
    throw DecodeError(
        StrFormat("bad virtual binary magic 0x%08x at offset 0", magic));
  }
  const std::uint16_t version = r.U16();
  if (version != kVersion) {
    throw DecodeError(StrFormat("unsupported binary version %u at offset 4",
                                version));
  }
  Module module;
  module.name = r.Str();
  module.launch.block_dim = r.U32();
  module.launch.grid_dim = r.U32();
  module.launch.param_words = r.U32();
  module.user_smem_bytes = r.U32();
  module.usage.regs_per_thread = r.U32();
  module.usage.local_slots_per_thread = r.U32();
  module.usage.spriv_slots_per_thread = r.U32();
  module.usage.user_smem_bytes_per_block = r.U32();
  const std::uint32_t num_functions = r.U32();
  for (std::uint32_t fi = 0; fi < num_functions; ++fi) {
    Function func;
    func.name = r.Str();
    func.is_kernel = r.U8() != 0;
    func.allocated = r.U8() != 0;
    func.ret_width = r.U8();
    const std::uint8_t num_params = r.U8();
    for (std::uint8_t pi = 0; pi < num_params; ++pi) {
      func.params.push_back(DecodeOperand(&r));
    }
    func.frame_regs = r.U32();
    const std::uint32_t num_labels = r.U32();
    for (std::uint32_t li = 0; li < num_labels; ++li) {
      const std::string label = r.Str();
      const std::uint32_t index = r.U32();
      func.labels.emplace(label, index);
    }
    const std::uint32_t num_instrs = r.U32();
    for (std::uint32_t ii = 0; ii < num_instrs; ++ii) {
      func.instrs.push_back(DecodeInstruction(&r));
    }
    for (const auto& [label, index] : func.labels) {
      if (index > func.NumInstrs()) {
        throw DecodeError(StrFormat(
            "label '%s' out of range (index %u > %u instrs) at offset %zu",
            label.c_str(), index, func.NumInstrs(), r.pos()));
      }
    }
    module.functions.push_back(std::move(func));
  }
  if (!r.AtEnd()) {
    throw DecodeError(StrFormat(
        "trailing bytes in virtual binary at offset %zu: %zu of %zu bytes "
        "unconsumed",
        r.pos(), bytes.size() - r.pos(), bytes.size()));
  }
  return module;
}

}  // namespace

Module DecodeModule(const std::vector<std::uint8_t>& bytes) {
  telemetry::ScopedSpan span("compiler", "isa.decode");
  span.AddArg("bytes", static_cast<std::uint64_t>(bytes.size()));
  // Fault-injection hook: an installed injector may corrupt a copy of
  // the image (bit-flips / truncation) before parsing; the decoder must
  // then fail with a clean DecodeError, never crash or hang.
  if (FaultInjector* injector = FaultInjector::Current()) {
    std::vector<std::uint8_t> mutated = bytes;
    if (injector->MutateEncodedModule(&mutated)) {
      return DecodeModuleBytes(mutated);
    }
  }
  return DecodeModuleBytes(bytes);
}

}  // namespace orion::isa
