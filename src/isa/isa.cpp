#include "isa/isa.h"

#include <array>
#include <bit>
#include <cstring>

#include "common/error.h"

namespace orion::isa {

Operand Operand::VReg(std::uint32_t id, std::uint8_t width) {
  Operand op;
  op.kind = OperandKind::kVReg;
  op.id = id;
  op.width = width;
  return op;
}

Operand Operand::PReg(std::uint32_t id, std::uint8_t width) {
  Operand op;
  op.kind = OperandKind::kPReg;
  op.id = id;
  op.width = width;
  return op;
}

Operand Operand::Imm(std::int64_t value) {
  Operand op;
  op.kind = OperandKind::kImm;
  op.imm = value;
  return op;
}

Operand Operand::FImm(float value) {
  Operand op;
  op.kind = OperandKind::kImm;
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  op.imm = static_cast<std::int64_t>(bits);
  return op;
}

Operand Operand::Special(SpecialReg sreg) {
  Operand op;
  op.kind = OperandKind::kSpecial;
  op.sreg = sreg;
  return op;
}

bool Operand::operator==(const Operand& other) const {
  if (kind != other.kind) {
    return false;
  }
  switch (kind) {
    case OperandKind::kNone:
      return true;
    case OperandKind::kVReg:
    case OperandKind::kPReg:
      return id == other.id && width == other.width;
    case OperandKind::kImm:
      return imm == other.imm;
    case OperandKind::kSpecial:
      return sreg == other.sreg;
  }
  return false;
}

bool IsBranch(Opcode op) {
  return op == Opcode::kBra || op == Opcode::kBrz || op == Opcode::kBrnz;
}

bool IsTerminator(Opcode op) {
  return IsBranch(op) || op == Opcode::kRet || op == Opcode::kExit;
}

bool IsMemory(Opcode op) { return op == Opcode::kLd || op == Opcode::kSt; }

bool IsSfu(Opcode op) {
  return op == Opcode::kFSqrt || op == Opcode::kFRcp || op == Opcode::kFExp;
}

namespace {

constexpr std::array<const char*, static_cast<std::size_t>(Opcode::kOpcodeCount)>
    kOpcodeNames = {
        "NOP",  "MOV",  "IADD", "ISUB", "IMUL", "IMAD", "IMIN", "IMAX",
        "AND",  "OR",   "XOR",  "SHL",  "SHR",  "FADD", "FMUL", "FFMA",
        "FMIN", "FMAX", "FSQRT", "FRCP", "FEXP", "SETP", "SEL",  "S2R",
        "LD",   "ST",   "BRA",  "BRZ",  "BRNZ", "CAL",  "RET",  "EXIT",
        "BAR",
};

constexpr std::array<const char*, 6> kSpecialNames = {
    "TID", "BID", "BDIM", "GDIM", "LANE", "WARP",
};

constexpr std::array<const char*, 6> kCmpNames = {
    "LT", "LE", "EQ", "NE", "GE", "GT",
};

}  // namespace

const char* OpcodeName(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  ORION_CHECK(idx < kOpcodeNames.size());
  return kOpcodeNames[idx];
}

std::optional<Opcode> OpcodeFromName(std::string_view name) {
  for (std::size_t i = 0; i < kOpcodeNames.size(); ++i) {
    if (name == kOpcodeNames[i]) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

const char* SpecialRegName(SpecialReg sreg) {
  return kSpecialNames[static_cast<std::size_t>(sreg)];
}

std::optional<SpecialReg> SpecialRegFromName(std::string_view name) {
  for (std::size_t i = 0; i < kSpecialNames.size(); ++i) {
    if (name == kSpecialNames[i]) {
      return static_cast<SpecialReg>(i);
    }
  }
  return std::nullopt;
}

const char* CmpKindName(CmpKind cmp) {
  return kCmpNames[static_cast<std::size_t>(cmp)];
}

std::optional<CmpKind> CmpKindFromName(std::string_view name) {
  for (std::size_t i = 0; i < kCmpNames.size(); ++i) {
    if (name == kCmpNames[i]) {
      return static_cast<CmpKind>(i);
    }
  }
  return std::nullopt;
}

const char* MemSpaceSuffix(MemSpace space) {
  switch (space) {
    case MemSpace::kGlobal:
      return "G";
    case MemSpace::kShared:
      return "S";
    case MemSpace::kSharedPriv:
      return "SP";
    case MemSpace::kLocal:
      return "L";
    case MemSpace::kParam:
      return "P";
  }
  return "?";
}

Function* Module::FindFunction(std::string_view fname) {
  for (Function& func : functions) {
    if (func.name == fname) {
      return &func;
    }
  }
  return nullptr;
}

const Function* Module::FindFunction(std::string_view fname) const {
  for (const Function& func : functions) {
    if (func.name == fname) {
      return &func;
    }
  }
  return nullptr;
}

Function& Module::Kernel() {
  for (Function& func : functions) {
    if (func.is_kernel) {
      return func;
    }
  }
  throw CompileError("module '" + name + "' has no kernel function");
}

const Function& Module::Kernel() const {
  for (const Function& func : functions) {
    if (func.is_kernel) {
      return func;
    }
  }
  throw CompileError("module '" + name + "' has no kernel function");
}

std::uint32_t MaxVRegId(const Function& func) {
  std::uint32_t max_id = 0;
  bool any = false;
  for (const Instruction& instr : func.instrs) {
    for (const Operand& op : instr.dsts) {
      if (op.kind == OperandKind::kVReg) {
        max_id = std::max(max_id, op.id);
        any = true;
      }
    }
    for (const Operand& op : instr.srcs) {
      if (op.kind == OperandKind::kVReg) {
        max_id = std::max(max_id, op.id);
        any = true;
      }
    }
  }
  return any ? max_id + 1 : 0;
}

}  // namespace orion::isa
