// The Orion virtual GPU ISA.
//
// Orion (Middleware'16) performs occupancy tuning by rewriting GPU
// *binary* code (SASS), using the asfermi encoder/decoder.  This
// reproduction defines a self-contained SASS-like virtual ISA with the
// properties the paper's compiler depends on:
//
//   * flat register-based instructions over 32-bit register words,
//   * wide variables (64/96/128-bit) that must occupy aligned,
//     consecutive 32-bit registers after allocation,
//   * explicit memory spaces: global, user shared memory, per-thread
//     local memory (spill space, backed by L1), per-thread *private
//     shared-memory slots* (the re-homed spills of Hayes & Zhang [11]),
//     and kernel parameters,
//   * procedure calls (CAL/RET) — including intrinsic calls such as
//     floating point division, which SASS implements as a call,
//   * block-wide barriers and SIMT launch geometry.
//
// Programs exist in two register states: *virtual* (unbounded vN ids,
// produced by the front end) and *physical* (rN ids, produced by the
// allocator).  The same containers hold both; Function::allocated says
// which state a function is in.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace orion::isa {

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

enum class Opcode : std::uint8_t {
  kNop = 0,
  kMov,   // dst = src
  // Integer ALU.
  kIAdd,  // dst = a + b
  kISub,  // dst = a - b
  kIMul,  // dst = a * b
  kIMad,  // dst = a * b + c
  kIMin,  // dst = min(a, b)
  kIMax,  // dst = max(a, b)
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  // Float ALU (operands are 32-bit float bit patterns).
  kFAdd,
  kFMul,
  kFFma,  // dst = a * b + c
  kFMin,
  kFMax,
  kFSqrt,  // dst = sqrt(a); long-latency SFU op
  kFRcp,   // dst = 1/a; long-latency SFU op
  kFExp,   // dst = exp2(a); long-latency SFU op
  // Comparison / select.  kSetp writes 0/1 into a 1-word register.
  kSetp,
  kSel,  // dst = cond ? a : b
  // Special register read.
  kS2R,
  // Memory.  Space given by Instruction::space.
  kLd,
  kSt,
  // Control flow.
  kBra,   // unconditional, target label
  kBrz,   // branch if src == 0
  kBrnz,  // branch if src != 0
  kCal,   // call: srcs = arguments, dsts = optional result, target = callee.
          // The allocator lowers argument/result passing to physical moves.
  kRet,   // return from device function; srcs = optional returned value
  kExit,  // terminate kernel thread
  kBar,   // block-wide barrier
  kOpcodeCount,
};

// Comparison kinds for kSetp (stored in Instruction::cmp).
enum class CmpKind : std::uint8_t { kLt, kLe, kEq, kNe, kGe, kGt };

// Integer vs float compare for kSetp.
enum class CmpType : std::uint8_t { kInt, kFloat };

// Memory spaces.
enum class MemSpace : std::uint8_t {
  kGlobal = 0,  // off-chip DRAM through L1(configurable)/L2
  kShared,      // user-managed shared memory, address operand
  kSharedPriv,  // per-thread private shared-memory slot (immediate slot id)
  kLocal,       // per-thread local-memory slot (immediate slot id; L1-cached)
  kParam,       // kernel parameter word (immediate index)
};

// Special registers readable via kS2R.
enum class SpecialReg : std::uint8_t {
  kTid = 0,   // thread index within block (1-D model)
  kBid,       // block index within grid
  kBlockDim,  // threads per block
  kGridDim,   // blocks per grid
  kLane,      // lane within warp
  kWarpId,    // warp index within block
};

// Lane access-pattern for global memory operations: lane l of a warp
// accesses (base + l * stride_words * 4) bytes.  kScatterStride marks a
// data-dependent scatter (graph workloads): the simulator derives per-lane
// cache lines pseudo-randomly from the base address.
inline constexpr std::uint16_t kScatterStride = 0xFFFF;

// ---------------------------------------------------------------------------
// Operands
// ---------------------------------------------------------------------------

enum class OperandKind : std::uint8_t {
  kNone = 0,
  kVReg,     // virtual register, unbounded id
  kPReg,     // physical register word index (first of `width` words)
  kImm,      // 64-bit signed immediate
  kSpecial,  // special register name (kS2R source)
};

struct Operand {
  OperandKind kind = OperandKind::kNone;
  std::uint32_t id = 0;     // vreg id or first physical register word
  std::uint8_t width = 1;   // in 32-bit words: 1, 2, 3 or 4
  std::int64_t imm = 0;     // kImm payload
  SpecialReg sreg = SpecialReg::kTid;

  static Operand VReg(std::uint32_t id, std::uint8_t width = 1);
  static Operand PReg(std::uint32_t id, std::uint8_t width = 1);
  static Operand Imm(std::int64_t value);
  static Operand FImm(float value);  // float bit pattern as immediate
  static Operand Special(SpecialReg sreg);

  bool IsReg() const {
    return kind == OperandKind::kVReg || kind == OperandKind::kPReg;
  }
  bool operator==(const Operand& other) const;
};

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

struct Instruction {
  Opcode op = Opcode::kNop;
  std::vector<Operand> dsts;  // 0 or 1 entries
  std::vector<Operand> srcs;

  MemSpace space = MemSpace::kGlobal;  // for kLd/kSt
  CmpKind cmp = CmpKind::kLt;          // for kSetp
  CmpType cmp_type = CmpType::kInt;    // for kSetp
  std::uint16_t stride = 1;            // lane stride for global kLd/kSt
  std::string target;                  // label (branches) or callee (kCal)

  bool HasDst() const { return !dsts.empty(); }
  const Operand& Dst() const { return dsts.front(); }
  Operand& Dst() { return dsts.front(); }
};

// Opcode classification helpers.
bool IsBranch(Opcode op);             // kBra/kBrz/kBrnz
bool IsTerminator(Opcode op);         // branches + kRet/kExit
bool IsMemory(Opcode op);             // kLd/kSt
bool IsSfu(Opcode op);                // kFSqrt/kFRcp/kFExp
const char* OpcodeName(Opcode op);
std::optional<Opcode> OpcodeFromName(std::string_view name);
const char* SpecialRegName(SpecialReg sreg);
std::optional<SpecialReg> SpecialRegFromName(std::string_view name);
const char* CmpKindName(CmpKind cmp);
std::optional<CmpKind> CmpKindFromName(std::string_view name);
const char* MemSpaceSuffix(MemSpace space);

// ---------------------------------------------------------------------------
// Functions and modules
// ---------------------------------------------------------------------------

// Resource usage of an *allocated* function/kernel, filled in by the
// register allocator and consumed by the occupancy calculator and
// simulator.
struct ResourceUsage {
  std::uint32_t regs_per_thread = 0;        // physical 32-bit registers
  std::uint32_t local_slots_per_thread = 0; // 4-byte local memory slots
  std::uint32_t spriv_slots_per_thread = 0; // 4-byte private smem slots
  std::uint32_t user_smem_bytes_per_block = 0;

  std::uint32_t SmemBytesPerThread() const { return spriv_slots_per_thread * 4; }
};

struct Function {
  std::string name;
  bool is_kernel = false;
  bool allocated = false;  // false: vregs; true: pregs + spill slots
  // Device-function parameters: virtual registers live on entry, filled
  // by the caller.  The allocator pre-colors them to the first slots of
  // the callee frame (in declaration order, width-aligned).  Kernels
  // take no parameters (they read launch parameters via LD.P).
  std::vector<Operand> params;
  // Width in words of the returned value (0 for void).  A returning
  // function ends each path with `RET v`; the allocated form delivers
  // the value through the module-wide ABI scratch registers.
  std::uint8_t ret_width = 0;
  std::vector<Instruction> instrs;
  // Label -> index of the instruction the label precedes.  A label at
  // instrs.size() marks the function end (allowed as a branch target for
  // fall-off exits).
  std::map<std::string, std::uint32_t> labels;

  // Number of contiguous physical register slots this function's body
  // uses *itself* (excluding callees); filled by the allocator.
  std::uint32_t frame_regs = 0;

  std::uint32_t NumInstrs() const { return static_cast<std::uint32_t>(instrs.size()); }
};

struct LaunchInfo {
  std::uint32_t block_dim = 256;   // threads per block
  std::uint32_t grid_dim = 64;     // blocks per grid
  std::uint32_t param_words = 8;   // kernel parameter size
};

struct Module {
  std::string name;
  std::vector<Function> functions;
  LaunchInfo launch;
  std::uint32_t user_smem_bytes = 0;  // static __shared__ allocation per block
  ResourceUsage usage;                // valid once the kernel is allocated

  Function* FindFunction(std::string_view fname);
  const Function* FindFunction(std::string_view fname) const;
  // The unique kernel entry.  Throws CompileError if absent.
  Function& Kernel();
  const Function& Kernel() const;
};

// Highest virtual register id used in the function plus one (0 if none).
std::uint32_t MaxVRegId(const Function& func);

}  // namespace orion::isa
