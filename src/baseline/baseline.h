// The nvcc stand-in baseline compiler.
//
// Plays the role of the paper's comparison point: a competent,
// occupancy-oblivious compilation.  It allocates registers for minimal
// spilling up to the hardware per-thread cap — the occupancy is whatever
// falls out — with none of Orion's occupancy-oriented machinery: no
// shared-memory re-homing of spills, no loop-weighted spill choice, and
// no slot-addressing optimization.
#pragma once

#include "alloc/allocator.h"
#include "arch/gpu_spec.h"
#include "isa/isa.h"

namespace orion::baseline {

// Compiles `virt` the way the default toolchain would.  `stats` is
// optional.
isa::Module CompileDefault(const isa::Module& virt, const arch::GpuSpec& spec,
                           alloc::AllocStats* stats = nullptr);

}  // namespace orion::baseline
