#include "baseline/baseline.h"

namespace orion::baseline {

isa::Module CompileDefault(const isa::Module& virt, const arch::GpuSpec& spec,
                           alloc::AllocStats* stats) {
  alloc::AllocBudget budget;
  budget.reg_words = spec.max_regs_per_thread;
  budget.spriv_slot_words = 0;
  alloc::AllocOptions options;
  options.rehome_spills = false;
  options.weighted_spills = false;
  options.move_min = false;
  options.use_ssa = false;  // plain live-range allocation
  // nvcc does compress frames across calls (its ABI reuses registers),
  // so space minimization stays on.
  options.space_min = true;
  return alloc::AllocateModule(virt, budget, options, stats);
}

}  // namespace orion::baseline
