#include "telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

namespace orion::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Soft cap on buffered events: beyond this, events are counted as
// dropped instead of growing the buffer without bound.
constexpr std::size_t kMaxEvents = 1u << 20;

using Clock = std::chrono::steady_clock;

struct State {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  Clock::time_point epoch = Clock::now();
  // std::map keeps node addresses stable, so Counter&/Gauge&
  // references handed out by GetCounter/GetGauge never dangle.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
  std::uint32_t next_thread = 0;
};

State& GetState() {
  static State* state = new State();  // leaked: outlives exit-time dtors
  return *state;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           GetState().epoch)
          .count());
}

thread_local std::uint32_t t_depth = 0;
thread_local std::uint32_t t_index = 0;
thread_local bool t_index_assigned = false;

void Record(TraceEvent&& event) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.events.size() >= kMaxEvents) {
    ++state.dropped;
    return;
  }
  state.events.push_back(std::move(event));
}

}  // namespace

std::uint32_t ThreadIndex() {
  if (!t_index_assigned) {
    State& state = GetState();
    std::lock_guard<std::mutex> lock(state.mu);
    t_index = state.next_thread++;
    t_index_assigned = true;
  }
  return t_index;
}

void SetEnabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Reset() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
  state.dropped = 0;
  state.epoch = Clock::now();
  for (auto& [name, counter] : state.counters) {
    counter.Zero();
  }
  for (auto& [name, gauge] : state.gauges) {
    gauge.Zero();
  }
  for (auto& [name, histogram] : state.histograms) {
    histogram.Zero();
  }
}

EventArg Arg(std::string key, std::string value) {
  EventArg arg;
  arg.key = std::move(key);
  arg.str = std::move(value);
  return arg;
}
EventArg Arg(std::string key, std::string_view value) {
  return Arg(std::move(key), std::string(value));
}
EventArg Arg(std::string key, const char* value) {
  return Arg(std::move(key), std::string(value));
}
EventArg Arg(std::string key, double value) {
  EventArg arg;
  arg.key = std::move(key);
  arg.num = value;
  arg.is_num = true;
  return arg;
}
EventArg Arg(std::string key, std::uint64_t value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, std::uint32_t value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, std::int64_t value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, int value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, bool value) {
  return Arg(std::move(key), value ? 1.0 : 0.0);
}

void Instant(std::string_view track, std::string_view name,
             std::vector<EventArg> args) {
  if (!Enabled()) {
    return;
  }
  TraceEvent event;
  event.phase = 'i';
  event.track = std::string(track);
  event.name = std::string(name);
  event.ts_ns = NowNs();
  event.thread = ThreadIndex();
  event.depth = t_depth;
  event.args = std::move(args);
  Record(std::move(event));
}

ScopedSpan::ScopedSpan(std::string_view track, std::string_view name) {
  if (!Enabled()) {
    return;
  }
  active_ = true;
  track_ = std::string(track);
  name_ = std::string(name);
  depth_ = t_depth++;
  TraceEvent event;
  event.phase = 'B';
  event.track = track_;
  event.name = name_;
  event.ts_ns = NowNs();
  event.thread = ThreadIndex();
  event.depth = depth_;
  Record(std::move(event));
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  --t_depth;
  TraceEvent event;
  event.phase = 'E';
  event.track = std::move(track_);
  event.name = std::move(name_);
  event.ts_ns = NowNs();
  event.thread = ThreadIndex();
  event.depth = depth_;
  event.args = std::move(args_);
  Record(std::move(event));
}

void ScopedSpan::AddArg(EventArg arg) {
  if (active_) {
    args_.push_back(std::move(arg));
  }
}

void Gauge::SetMax(double value) {
  if (!Enabled()) {
    return;
  }
  double current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

int HistogramBucketIndex(double value) {
  // Underflow bin: zero, negatives, NaN and anything below 2^-32.
  if (!(value >= 0x1p-32)) {
    return 0;
  }
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  if (exp > 32) {
    return kHistogramBuckets - 1;  // overflow bin
  }
  // exp in [-31, 32] here (smaller exponents fell into the underflow
  // test above), mapping onto buckets 1..64.
  return exp + 32;
}

double HistogramBucketUpperEdge(int bucket) {
  if (bucket <= 0) {
    return 0x1p-32;
  }
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, bucket - 32);
}

void HistogramData::Add(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[HistogramBucketIndex(value)];
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramData::Percentile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based, rounded up so q = 1 names the
  // last sample and q = 0 the first.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::clamp(HistogramBucketUpperEdge(i), min, max);
    }
  }
  return max;
}

void Histogram::RecordAlways(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.Add(value);
}

HistogramData Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void Histogram::Zero() {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = HistogramData{};
}

Counter& GetCounter(std::string_view name) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    it = state.counters.emplace(std::piecewise_construct,
                                std::forward_as_tuple(name),
                                std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& GetGauge(std::string_view name) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end()) {
    it = state.gauges.emplace(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Histogram& GetHistogram(std::string_view name) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end()) {
    it = state.histograms.emplace(std::piecewise_construct,
                                  std::forward_as_tuple(name),
                                  std::forward_as_tuple())
             .first;
  }
  return it->second;
}

std::vector<TraceEvent> SnapshotEvents() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events;
}

std::uint64_t DroppedEvents() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dropped;
}

std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    out.emplace_back(name, counter.Value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> SnapshotGauges() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    out.emplace_back(name, gauge.Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramData>> SnapshotHistograms() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    out.emplace_back(name, histogram.Snapshot());
  }
  return out;
}

}  // namespace orion::telemetry
