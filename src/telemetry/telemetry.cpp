#include "telemetry/telemetry.h"

#include <chrono>
#include <map>
#include <mutex>

namespace orion::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Soft cap on buffered events: beyond this, events are counted as
// dropped instead of growing the buffer without bound.
constexpr std::size_t kMaxEvents = 1u << 20;

using Clock = std::chrono::steady_clock;

struct State {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  Clock::time_point epoch = Clock::now();
  // std::map keeps node addresses stable, so Counter&/Gauge&
  // references handed out by GetCounter/GetGauge never dangle.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::uint32_t next_thread = 0;
};

State& GetState() {
  static State* state = new State();  // leaked: outlives exit-time dtors
  return *state;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           GetState().epoch)
          .count());
}

thread_local std::uint32_t t_depth = 0;
thread_local std::uint32_t t_index = 0;
thread_local bool t_index_assigned = false;

void Record(TraceEvent&& event) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.events.size() >= kMaxEvents) {
    ++state.dropped;
    return;
  }
  state.events.push_back(std::move(event));
}

}  // namespace

std::uint32_t ThreadIndex() {
  if (!t_index_assigned) {
    State& state = GetState();
    std::lock_guard<std::mutex> lock(state.mu);
    t_index = state.next_thread++;
    t_index_assigned = true;
  }
  return t_index;
}

void SetEnabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Reset() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
  state.dropped = 0;
  state.epoch = Clock::now();
  for (auto& [name, counter] : state.counters) {
    counter.Zero();
  }
  for (auto& [name, gauge] : state.gauges) {
    gauge.Zero();
  }
}

EventArg Arg(std::string key, std::string value) {
  EventArg arg;
  arg.key = std::move(key);
  arg.str = std::move(value);
  return arg;
}
EventArg Arg(std::string key, std::string_view value) {
  return Arg(std::move(key), std::string(value));
}
EventArg Arg(std::string key, const char* value) {
  return Arg(std::move(key), std::string(value));
}
EventArg Arg(std::string key, double value) {
  EventArg arg;
  arg.key = std::move(key);
  arg.num = value;
  arg.is_num = true;
  return arg;
}
EventArg Arg(std::string key, std::uint64_t value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, std::uint32_t value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, std::int64_t value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, int value) {
  return Arg(std::move(key), static_cast<double>(value));
}
EventArg Arg(std::string key, bool value) {
  return Arg(std::move(key), value ? 1.0 : 0.0);
}

void Instant(std::string_view track, std::string_view name,
             std::vector<EventArg> args) {
  if (!Enabled()) {
    return;
  }
  TraceEvent event;
  event.phase = 'i';
  event.track = std::string(track);
  event.name = std::string(name);
  event.ts_ns = NowNs();
  event.thread = ThreadIndex();
  event.depth = t_depth;
  event.args = std::move(args);
  Record(std::move(event));
}

ScopedSpan::ScopedSpan(std::string_view track, std::string_view name) {
  if (!Enabled()) {
    return;
  }
  active_ = true;
  track_ = std::string(track);
  name_ = std::string(name);
  depth_ = t_depth++;
  TraceEvent event;
  event.phase = 'B';
  event.track = track_;
  event.name = name_;
  event.ts_ns = NowNs();
  event.thread = ThreadIndex();
  event.depth = depth_;
  Record(std::move(event));
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  --t_depth;
  TraceEvent event;
  event.phase = 'E';
  event.track = std::move(track_);
  event.name = std::move(name_);
  event.ts_ns = NowNs();
  event.thread = ThreadIndex();
  event.depth = depth_;
  event.args = std::move(args_);
  Record(std::move(event));
}

void ScopedSpan::AddArg(EventArg arg) {
  if (active_) {
    args_.push_back(std::move(arg));
  }
}

void Gauge::SetMax(double value) {
  if (!Enabled()) {
    return;
  }
  double current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

Counter& GetCounter(std::string_view name) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    it = state.counters.emplace(std::piecewise_construct,
                                std::forward_as_tuple(name),
                                std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& GetGauge(std::string_view name) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end()) {
    it = state.gauges.emplace(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple())
             .first;
  }
  return it->second;
}

std::vector<TraceEvent> SnapshotEvents() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events;
}

std::uint64_t DroppedEvents() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dropped;
}

std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    out.emplace_back(name, counter.Value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> SnapshotGauges() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(state.gauges.size());
  for (const auto& [name, gauge] : state.gauges) {
    out.emplace_back(name, gauge.Value());
  }
  return out;
}

}  // namespace orion::telemetry
