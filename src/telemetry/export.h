// Exporters over a telemetry snapshot: JSONL event log, Chrome
// trace-event JSON (Perfetto / chrome://tracing loadable), and a
// human-readable end-of-run summary table.
#pragma once

#include <iosfwd>
#include <string>

namespace orion::telemetry {

// One JSON object per line: every buffered event in recording order,
// then one {"ph":"C",...} line per counter and gauge.
std::string ToJsonl();

// Chrome trace-event format: {"traceEvents":[...]}.  Each
// (track, thread) pair becomes its own tid with a thread_name
// metadata record, so Perfetto shows "compiler", "tuner", "sim", ...
// as separate named tracks.  Counters are appended as 'C' events on a
// dedicated "counters" track.  Timestamps are microseconds.
std::string ToChromeTrace();

// Text summary: per-span aggregate table (count, total/mean ms,
// grouped by track/name) followed by counter and gauge tables.
std::string ToSummary();

// Writes `content` to `path`; returns false on I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

// JSON string escaping helper (shared with the logger bridge).
std::string JsonEscape(const std::string& s);

}  // namespace orion::telemetry
