#include "telemetry/trace_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace orion::telemetry {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      *error = Err("trailing data after document");
      return false;
    }
    return true;
  }

 private:
  std::string Err(const std::string& what) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos_);
    return what + buf;
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = Err(what);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return true;
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Fail("bad escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // Validation only: fold non-ASCII code points to '?'.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string EventLabel(std::size_t index, const JsonValue& event) {
  std::string label = "event #" + std::to_string(index);
  const JsonValue* name = event.Get("name");
  if (name != nullptr && name->IsString()) {
    label += " (" + name->string + ")";
  }
  return label;
}

}  // namespace

const JsonValue* JsonValue::Get(const std::string& key) const {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::unique_ptr<JsonValue> ParseJson(std::string_view text,
                                     std::string* error) {
  auto value = std::make_unique<JsonValue>();
  Parser parser(text);
  if (!parser.Parse(value.get(), error)) {
    return nullptr;
  }
  return value;
}

std::vector<std::string> CheckChromeTrace(std::string_view json) {
  std::vector<std::string> violations;
  std::string error;
  const std::unique_ptr<JsonValue> doc = ParseJson(json, &error);
  if (doc == nullptr) {
    violations.push_back("invalid JSON: " + error);
    return violations;
  }
  const JsonValue* events = nullptr;
  if (doc->IsArray()) {
    events = doc.get();
  } else if (doc->IsObject()) {
    events = doc->Get("traceEvents");
  }
  if (events == nullptr || !events->IsArray()) {
    violations.push_back("document has no traceEvents array");
    return violations;
  }

  std::map<double, double> last_ts;                       // tid -> ts
  std::map<double, std::vector<std::string>> open_spans;  // tid -> names
  bool compiler_span = false;
  std::size_t tuner_iterations = 0;
  std::size_t tuner_locks = 0;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (!event.IsObject()) {
      violations.push_back(EventLabel(i, event) + ": not an object");
      continue;
    }
    const JsonValue* ph = event.Get("ph");
    const JsonValue* name = event.Get("name");
    if (ph == nullptr || !ph->IsString() || ph->string.size() != 1) {
      violations.push_back(EventLabel(i, event) +
                           ": missing or malformed ph");
      continue;
    }
    if (name == nullptr || !name->IsString() || name->string.empty()) {
      violations.push_back(EventLabel(i, event) + ": missing name");
      continue;
    }
    const char phase = ph->string[0];
    if (phase == 'M') {
      continue;  // metadata records carry no timestamp
    }
    const JsonValue* pid = event.Get("pid");
    const JsonValue* tid = event.Get("tid");
    const JsonValue* ts = event.Get("ts");
    if (pid == nullptr || !pid->IsNumber() || tid == nullptr ||
        !tid->IsNumber() || ts == nullptr || !ts->IsNumber()) {
      violations.push_back(EventLabel(i, event) +
                           ": missing pid/tid/ts");
      continue;
    }
    if (ts->number < 0) {
      violations.push_back(EventLabel(i, event) + ": negative ts");
    }
    const auto it = last_ts.find(tid->number);
    if (it != last_ts.end() && ts->number < it->second) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ": ts went backwards on tid %g (%.3f -> %.3f)",
                    tid->number, it->second, ts->number);
      violations.push_back(EventLabel(i, event) + buf);
    }
    last_ts[tid->number] = ts->number;

    const JsonValue* cat = event.Get("cat");
    const std::string track =
        (cat != nullptr && cat->IsString()) ? cat->string : "";
    if (phase == 'B') {
      open_spans[tid->number].push_back(name->string);
      if (track == "compiler") {
        compiler_span = true;
      }
    } else if (phase == 'E') {
      std::vector<std::string>& stack = open_spans[tid->number];
      if (stack.empty()) {
        violations.push_back(EventLabel(i, event) +
                             ": span end without matching begin");
      } else if (stack.back() != name->string) {
        violations.push_back(EventLabel(i, event) +
                             ": span end crosses open span '" +
                             stack.back() + "'");
        stack.pop_back();
      } else {
        stack.pop_back();
      }
    }

    if (track == "tuner") {
      if (name->string == "tuner.iteration") {
        ++tuner_iterations;
        const JsonValue* args = event.Get("args");
        const bool has_args =
            args != nullptr && args->IsObject() &&
            args->Get("version") != nullptr &&
            args->Get("decision") != nullptr;
        if (!has_args) {
          violations.push_back(EventLabel(i, event) +
                               ": tuner.iteration lacks version/decision "
                               "args");
        }
      } else if (name->string == "tuner.lock") {
        ++tuner_locks;
        const JsonValue* args = event.Get("args");
        if (args == nullptr || !args->IsObject() ||
            args->Get("version") == nullptr) {
          violations.push_back(EventLabel(i, event) +
                               ": tuner.lock lacks version arg");
        }
      }
    }
  }

  for (const auto& [tid, stack] : open_spans) {
    if (!stack.empty()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "tid %g has ", tid);
      violations.push_back(std::string(buf) +
                           std::to_string(stack.size()) +
                           " unterminated span(s), innermost '" +
                           stack.back() + "'");
    }
  }
  if (!compiler_span) {
    violations.push_back("no compiler-phase span (cat == \"compiler\")");
  }
  if (tuner_iterations == 0) {
    violations.push_back("no tuner.iteration events — Fig. 9 walk missing");
  }
  if (tuner_locks != 1) {
    violations.push_back("expected exactly 1 tuner.lock event, found " +
                         std::to_string(tuner_locks));
  }
  return violations;
}

std::vector<std::string> CheckJsonl(std::string_view text) {
  std::vector<std::string> violations;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string error;
    const std::unique_ptr<JsonValue> value = ParseJson(line, &error);
    const std::string label = "line " + std::to_string(line_no);
    if (value == nullptr) {
      violations.push_back(label + ": invalid JSON: " + error);
      continue;
    }
    if (!value->IsObject()) {
      violations.push_back(label + ": not a JSON object");
      continue;
    }
    const JsonValue* ph = value->Get("ph");
    const JsonValue* name = value->Get("name");
    if (ph == nullptr || !ph->IsString() || ph->string.size() != 1) {
      violations.push_back(label + ": missing or malformed ph");
    }
    if (name == nullptr || !name->IsString() || name->string.empty()) {
      violations.push_back(label + ": missing name");
    }
    const JsonValue* ts = value->Get("ts_us");
    if (ts != nullptr && ts->IsNumber() && ts->number < 0) {
      violations.push_back(label + ": negative ts_us");
    }
  }
  return violations;
}

}  // namespace orion::telemetry
