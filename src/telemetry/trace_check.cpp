#include "telemetry/trace_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <utility>

namespace orion::telemetry {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      *error = Err("trailing data after document");
      return false;
    }
    return true;
  }

 private:
  std::string Err(const std::string& what) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos_);
    return what + buf;
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = Err(what);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return true;
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Fail("bad escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // Validation only: fold non-ASCII code points to '?'.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string EventLabel(std::size_t index, const JsonValue& event) {
  std::string label = "event #" + std::to_string(index);
  const JsonValue* name = event.Get("name");
  if (name != nullptr && name->IsString()) {
    label += " (" + name->string + ")";
  }
  return label;
}

}  // namespace

const JsonValue* JsonValue::Get(const std::string& key) const {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::unique_ptr<JsonValue> ParseJson(std::string_view text,
                                     std::string* error) {
  auto value = std::make_unique<JsonValue>();
  Parser parser(text);
  if (!parser.Parse(value.get(), error)) {
    return nullptr;
  }
  return value;
}

std::vector<std::string> CheckChromeTrace(std::string_view json) {
  std::vector<std::string> violations;
  std::string error;
  const std::unique_ptr<JsonValue> doc = ParseJson(json, &error);
  if (doc == nullptr) {
    violations.push_back("invalid JSON: " + error);
    return violations;
  }
  const JsonValue* events = nullptr;
  if (doc->IsArray()) {
    events = doc.get();
  } else if (doc->IsObject()) {
    events = doc->Get("traceEvents");
  }
  if (events == nullptr || !events->IsArray()) {
    violations.push_back("document has no traceEvents array");
    return violations;
  }

  std::map<double, double> last_ts;                       // tid -> ts
  std::map<double, std::vector<std::string>> open_spans;  // tid -> names
  bool compiler_span = false;
  std::size_t tuner_iterations = 0;
  std::size_t tuner_locks = 0;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (!event.IsObject()) {
      violations.push_back(EventLabel(i, event) + ": not an object");
      continue;
    }
    const JsonValue* ph = event.Get("ph");
    const JsonValue* name = event.Get("name");
    if (ph == nullptr || !ph->IsString() || ph->string.size() != 1) {
      violations.push_back(EventLabel(i, event) +
                           ": missing or malformed ph");
      continue;
    }
    if (name == nullptr || !name->IsString() || name->string.empty()) {
      violations.push_back(EventLabel(i, event) + ": missing name");
      continue;
    }
    const char phase = ph->string[0];
    if (phase == 'M') {
      continue;  // metadata records carry no timestamp
    }
    const JsonValue* pid = event.Get("pid");
    const JsonValue* tid = event.Get("tid");
    const JsonValue* ts = event.Get("ts");
    if (pid == nullptr || !pid->IsNumber() || tid == nullptr ||
        !tid->IsNumber() || ts == nullptr || !ts->IsNumber()) {
      violations.push_back(EventLabel(i, event) +
                           ": missing pid/tid/ts");
      continue;
    }
    if (ts->number < 0) {
      violations.push_back(EventLabel(i, event) + ": negative ts");
    }
    const auto it = last_ts.find(tid->number);
    if (it != last_ts.end() && ts->number < it->second) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ": ts went backwards on tid %g (%.3f -> %.3f)",
                    tid->number, it->second, ts->number);
      violations.push_back(EventLabel(i, event) + buf);
    }
    last_ts[tid->number] = ts->number;

    const JsonValue* cat = event.Get("cat");
    const std::string track =
        (cat != nullptr && cat->IsString()) ? cat->string : "";
    if (phase == 'B') {
      open_spans[tid->number].push_back(name->string);
      if (track == "compiler") {
        compiler_span = true;
      }
    } else if (phase == 'E') {
      std::vector<std::string>& stack = open_spans[tid->number];
      if (stack.empty()) {
        violations.push_back(EventLabel(i, event) +
                             ": span end without matching begin");
      } else if (stack.back() != name->string) {
        violations.push_back(EventLabel(i, event) +
                             ": span end crosses open span '" +
                             stack.back() + "'");
        stack.pop_back();
      } else {
        stack.pop_back();
      }
    }

    if (track == "tuner") {
      if (name->string == "tuner.iteration") {
        ++tuner_iterations;
        const JsonValue* args = event.Get("args");
        const bool has_args =
            args != nullptr && args->IsObject() &&
            args->Get("version") != nullptr &&
            args->Get("decision") != nullptr;
        if (!has_args) {
          violations.push_back(EventLabel(i, event) +
                               ": tuner.iteration lacks version/decision "
                               "args");
        }
      } else if (name->string == "tuner.lock") {
        ++tuner_locks;
        const JsonValue* args = event.Get("args");
        if (args == nullptr || !args->IsObject() ||
            args->Get("version") == nullptr) {
          violations.push_back(EventLabel(i, event) +
                               ": tuner.lock lacks version arg");
        }
      }
    }
  }

  for (const auto& [tid, stack] : open_spans) {
    if (!stack.empty()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "tid %g has ", tid);
      violations.push_back(std::string(buf) +
                           std::to_string(stack.size()) +
                           " unterminated span(s), innermost '" +
                           stack.back() + "'");
    }
  }
  if (!compiler_span) {
    violations.push_back("no compiler-phase span (cat == \"compiler\")");
  }
  if (tuner_iterations == 0) {
    violations.push_back("no tuner.iteration events — Fig. 9 walk missing");
  }
  if (tuner_locks != 1) {
    violations.push_back("expected exactly 1 tuner.lock event, found " +
                         std::to_string(tuner_locks));
  }
  return violations;
}

std::vector<std::string> CheckJsonl(std::string_view text) {
  std::vector<std::string> violations;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string error;
    const std::unique_ptr<JsonValue> value = ParseJson(line, &error);
    const std::string label = "line " + std::to_string(line_no);
    if (value == nullptr) {
      violations.push_back(label + ": invalid JSON: " + error);
      continue;
    }
    if (!value->IsObject()) {
      violations.push_back(label + ": not a JSON object");
      continue;
    }
    const JsonValue* ph = value->Get("ph");
    const JsonValue* name = value->Get("name");
    if (ph == nullptr || !ph->IsString() || ph->string.size() != 1) {
      violations.push_back(label + ": missing or malformed ph");
    }
    if (name == nullptr || !name->IsString() || name->string.empty()) {
      violations.push_back(label + ": missing name");
    }
    const JsonValue* ts = value->Get("ts_us");
    if (ts != nullptr && ts->IsNumber() && ts->number < 0) {
      violations.push_back(label + ": negative ts_us");
    }
  }
  return violations;
}

namespace {

// Conservation sums are integer-valued counters serialized as JSON
// numbers; 0.5 absorbs double rounding without admitting an off-by-one.
constexpr double kSumTolerance = 0.5;

bool OneOf(const std::string& value, std::initializer_list<const char*> set) {
  for (const char* candidate : set) {
    if (value == candidate) {
      return true;
    }
  }
  return false;
}

// Fetches object member `key` as a non-negative number; reports and
// returns nullptr otherwise.
const JsonValue* GetCount(const JsonValue& object, const char* key,
                          const std::string& where,
                          std::vector<std::string>* violations) {
  const JsonValue* value = object.Get(key);
  if (value == nullptr || !value->IsNumber()) {
    violations->push_back(where + ": missing numeric '" + key + "'");
    return nullptr;
  }
  if (value->number < 0) {
    violations->push_back(where + ": negative '" + key + "'");
    return nullptr;
  }
  return value;
}

const JsonValue* GetString(const JsonValue& object, const char* key,
                           const std::string& where,
                           std::vector<std::string>* violations) {
  const JsonValue* value = object.Get(key);
  if (value == nullptr || !value->IsString()) {
    violations->push_back(where + ": missing string '" + key + "'");
    return nullptr;
  }
  return value;
}

double SumArray(const JsonValue& array) {
  double sum = 0.0;
  for (const JsonValue& v : array.array) {
    sum += v.IsNumber() ? v.number : 0.0;
  }
  return sum;
}

bool NearlyEqual(double a, double b) {
  return a > b - kSumTolerance && a < b + kSumTolerance;
}

}  // namespace

void CheckProfileObject(const JsonValue& profile, const std::string& where,
                        std::vector<std::string>* violations) {
  if (!profile.IsObject()) {
    violations->push_back(where + ": not a JSON object");
    return;
  }
  const JsonValue* schema = GetString(profile, "schema", where, violations);
  if (schema != nullptr && schema->string != "orion.profile.v1") {
    violations->push_back(where + ": schema is '" + schema->string +
                          "', want orion.profile.v1");
  }
  GetString(profile, "kernel", where, violations);
  GetString(profile, "gpu", where, violations);
  const JsonValue* cache =
      GetString(profile, "cache_config", where, violations);
  if (cache != nullptr && !OneOf(cache->string, {"sc", "lc"})) {
    violations->push_back(where + ": cache_config '" + cache->string +
                          "' not sc|lc");
  }

  const JsonValue* launch = profile.Get("launch");
  double blocks = -1.0;
  if (launch == nullptr || !launch->IsObject()) {
    violations->push_back(where + ": missing launch object");
  } else {
    const JsonValue* b =
        GetCount(*launch, "blocks", where + ".launch", violations);
    GetCount(*launch, "block_dim", where + ".launch", violations);
    if (b != nullptr) {
      blocks = b->number;
    }
  }

  const JsonValue* occupancy = profile.Get("occupancy");
  if (occupancy == nullptr || !occupancy->IsObject()) {
    violations->push_back(where + ": missing occupancy object");
  } else {
    const JsonValue* value =
        GetCount(*occupancy, "value", where + ".occupancy", violations);
    if (value != nullptr && value->number > 1.0) {
      violations->push_back(where + ": occupancy.value > 1");
    }
    GetCount(*occupancy, "active_blocks_per_sm", where + ".occupancy",
             violations);
    GetCount(*occupancy, "active_warps_per_sm", where + ".occupancy",
             violations);
    GetCount(*occupancy, "active_threads_per_sm", where + ".occupancy",
             violations);
    const JsonValue* limiter =
        GetString(*occupancy, "limiter", where + ".occupancy", violations);
    if (limiter != nullptr &&
        !OneOf(limiter->string,
               {"registers", "shared_memory", "warp_slots", "block_slots"})) {
      violations->push_back(where + ": unknown occupancy limiter '" +
                            limiter->string + "'");
    }
  }

  const JsonValue* counters = profile.Get("counters");
  double cycles = -1.0;
  double warp_instructions = -1.0;
  if (counters == nullptr || !counters->IsObject()) {
    violations->push_back(where + ": missing counters object");
  } else {
    const std::string label = where + ".counters";
    const JsonValue* c = GetCount(*counters, "cycles", label, violations);
    const JsonValue* w =
        GetCount(*counters, "warp_instructions", label, violations);
    for (const char* key :
         {"ms", "energy", "alu_instructions", "sfu_instructions",
          "mem_instructions", "ipc_per_sm", "l1_hits", "l1_misses", "l2_hits",
          "l2_misses", "dram_transactions", "smem_accesses"}) {
      GetCount(*counters, key, label, violations);
    }
    if (c != nullptr) {
      cycles = c->number;
    }
    if (w != nullptr) {
      warp_instructions = w->number;
    }
  }

  static constexpr const char* kClasses[] = {
      "issue", "scoreboard", "barrier", "smem_conflict",
      "queue", "watchdog",   "idle"};

  const JsonValue* breakdown = profile.Get("stall_breakdown");
  if (breakdown == nullptr || !breakdown->IsObject()) {
    violations->push_back(where + ": missing stall_breakdown object");
  } else {
    const std::string label = where + ".stall_breakdown";
    const JsonValue* unit = GetString(*breakdown, "unit", label, violations);
    if (unit != nullptr && unit->string != "sm_cycles") {
      violations->push_back(label + ": unit is not sm_cycles");
    }
    const JsonValue* total = GetCount(*breakdown, "total", label, violations);
    double sum = 0.0;
    bool complete = total != nullptr;
    for (const char* cls : kClasses) {
      const JsonValue* v = GetCount(*breakdown, cls, label, violations);
      complete &= v != nullptr;
      sum += v != nullptr ? v->number : 0.0;
    }
    // The conservation invariant: classes sum *exactly* to the budget.
    if (complete && !NearlyEqual(sum, total->number)) {
      violations->push_back(label + ": classes do not sum to total");
    }
  }

  const JsonValue* percent = profile.Get("stall_percent");
  if (percent == nullptr || !percent->IsObject()) {
    violations->push_back(where + ": missing stall_percent object");
  } else {
    for (const char* cls : kClasses) {
      const JsonValue* v =
          GetCount(*percent, cls, where + ".stall_percent", violations);
      if (v != nullptr && v->number > 100.0) {
        violations->push_back(where + ": stall_percent." + cls + " > 100");
      }
    }
  }

  const JsonValue* verdict = GetString(profile, "verdict", where, violations);
  if (verdict != nullptr &&
      !OneOf(verdict->string, {"compute-bound", "latency-bound",
                               "bandwidth-bound", "under-occupied"})) {
    violations->push_back(where + ": unknown verdict '" + verdict->string +
                          "'");
  }

  const JsonValue* timeline = profile.Get("timeline");
  if (timeline == nullptr || !timeline->IsObject()) {
    violations->push_back(where + ": missing timeline object");
    return;
  }
  const std::string label = where + ".timeline";
  const JsonValue* buckets = GetCount(*timeline, "buckets", label, violations);
  GetCount(*timeline, "exec_start_cycle", label, violations);
  const JsonValue* bucket_cycles = timeline->Get("bucket_cycles");
  const JsonValue* instructions = timeline->Get("instructions");
  const JsonValue* ipc = timeline->Get("ipc");
  const std::pair<const char*, const JsonValue*> arrays[] = {
      {"bucket_cycles", bucket_cycles},
      {"instructions", instructions},
      {"ipc", ipc}};
  for (const auto& [key, value] : arrays) {
    if (value == nullptr || !value->IsArray()) {
      violations->push_back(label + ": missing array '" + std::string(key) +
                            "'");
    } else if (buckets != nullptr &&
               static_cast<double>(value->array.size()) != buckets->number) {
      violations->push_back(label + ": '" + std::string(key) +
                            "' length != buckets");
    }
  }
  if (bucket_cycles != nullptr && bucket_cycles->IsArray() && cycles >= 0 &&
      !NearlyEqual(SumArray(*bucket_cycles), cycles)) {
    violations->push_back(label +
                          ": bucket_cycles do not sum to counters.cycles");
  }
  if (instructions != nullptr && instructions->IsArray() &&
      warp_instructions >= 0 &&
      !NearlyEqual(SumArray(*instructions), warp_instructions)) {
    violations->push_back(
        label + ": instructions do not sum to counters.warp_instructions");
  }
  const JsonValue* per_sm = timeline->Get("per_sm");
  if (per_sm == nullptr || !per_sm->IsArray()) {
    violations->push_back(label + ": missing per_sm array");
    return;
  }
  double sm_blocks = 0.0;
  double sm_instructions = 0.0;
  for (std::size_t s = 0; s < per_sm->array.size(); ++s) {
    const JsonValue& sm = per_sm->array[s];
    const std::string sm_label = label + ".per_sm[" + std::to_string(s) + "]";
    if (!sm.IsObject()) {
      violations->push_back(sm_label + ": not an object");
      continue;
    }
    GetCount(sm, "sm", sm_label, violations);
    const JsonValue* b = GetCount(sm, "blocks", sm_label, violations);
    const JsonValue* instrs =
        GetCount(sm, "instructions", sm_label, violations);
    sm_blocks += b != nullptr ? b->number : 0.0;
    sm_instructions += instrs != nullptr ? instrs->number : 0.0;
    const JsonValue* occ = sm.Get("occupancy");
    if (occ == nullptr || !occ->IsArray()) {
      violations->push_back(sm_label + ": missing occupancy array");
    } else if (buckets != nullptr &&
               static_cast<double>(occ->array.size()) != buckets->number) {
      violations->push_back(sm_label + ": occupancy length != buckets");
    }
  }
  if (blocks >= 0 && !NearlyEqual(sm_blocks, blocks)) {
    violations->push_back(label +
                          ": per_sm blocks do not sum to launch.blocks");
  }
  if (warp_instructions >= 0 &&
      !NearlyEqual(sm_instructions, warp_instructions)) {
    violations->push_back(
        label + ": per_sm instructions do not sum to warp_instructions");
  }
}

std::vector<std::string> CheckProfileJson(std::string_view json) {
  std::vector<std::string> violations;
  std::string error;
  const std::unique_ptr<JsonValue> doc = ParseJson(json, &error);
  if (doc == nullptr) {
    violations.push_back("invalid JSON: " + error);
    return violations;
  }
  CheckProfileObject(*doc, "profile", &violations);
  return violations;
}

std::vector<std::string> CheckAnalysisJson(std::string_view json) {
  std::vector<std::string> violations;
  std::string error;
  const std::unique_ptr<JsonValue> doc = ParseJson(json, &error);
  if (doc == nullptr) {
    violations.push_back("invalid JSON: " + error);
    return violations;
  }
  if (!doc->IsObject()) {
    violations.push_back("analysis: not a JSON object");
    return violations;
  }
  const std::string where = "analysis";
  const JsonValue* schema = GetString(*doc, "schema", where, &violations);
  if (schema != nullptr && schema->string != "orion.analysis.v1") {
    violations.push_back(where + ": schema is '" + schema->string +
                         "', want orion.analysis.v1");
  }
  GetString(*doc, "kernel", where, &violations);
  GetString(*doc, "gpu", where, &violations);
  GetString(*doc, "fingerprint", where, &violations);
  const JsonValue* hash = GetString(*doc, "kernel_hash", where, &violations);
  if (hash != nullptr) {
    bool hex16 = hash->string.size() == 16;
    for (char c : hash->string) {
      hex16 &= (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    }
    if (!hex16) {
      violations.push_back(where +
                           ": kernel_hash is not a 16-digit lowercase hex "
                           "string");
    }
  }
  const JsonValue* direction =
      GetString(*doc, "direction", where, &violations);
  if (direction != nullptr &&
      !OneOf(direction->string, {"increasing", "decreasing"})) {
    violations.push_back(where + ": direction '" + direction->string +
                         "' not increasing|decreasing");
  }

  const JsonValue* lock = doc->Get("lock");
  double final_version = -1.0;
  if (lock == nullptr || !lock->IsObject()) {
    violations.push_back(where + ": missing lock object");
  } else {
    const JsonValue* v =
        GetCount(*lock, "final_version", where + ".lock", &violations);
    for (const char* key :
         {"iterations_to_settle", "steady_ms", "steady_energy",
          "steady_occupancy", "watchdog_trips", "faulted_iterations"}) {
      GetCount(*lock, key, where + ".lock", &violations);
    }
    if (v != nullptr) {
      final_version = v->number;
    }
  }

  const JsonValue* candidates = doc->Get("candidates");
  if (candidates == nullptr || !candidates->IsArray()) {
    violations.push_back(where + ": missing candidates array");
    return violations;
  }
  if (candidates->array.empty()) {
    violations.push_back(where + ": candidates array is empty");
  }
  if (final_version >= 0 &&
      final_version >= static_cast<double>(candidates->array.size())) {
    violations.push_back(where +
                         ": lock.final_version out of candidate range");
  }
  for (std::size_t i = 0; i < candidates->array.size(); ++i) {
    const JsonValue& c = candidates->array[i];
    const std::string label = where + ".candidates[" + std::to_string(i) + "]";
    if (!c.IsObject()) {
      violations.push_back(label + ": not an object");
      continue;
    }
    GetCount(c, "index", label, &violations);
    GetString(c, "tag", label, &violations);
    GetCount(c, "occupancy", label, &violations);
    GetString(c, "validation", label, &violations);
    // measured_median_ms / simulated_ms / quarantine_reason /
    // profile may each be null.
    for (const char* key : {"measured_median_ms", "simulated_ms"}) {
      const JsonValue* v = c.Get(key);
      if (v == nullptr ||
          (v->kind != JsonValue::Kind::kNull && !v->IsNumber())) {
        violations.push_back(label + ": '" + std::string(key) +
                             "' must be a number or null");
      }
    }
    const JsonValue* profile = c.Get("profile");
    if (profile == nullptr) {
      violations.push_back(label + ": missing 'profile' (object or null)");
    } else if (profile->kind != JsonValue::Kind::kNull) {
      CheckProfileObject(*profile, label + ".profile", &violations);
    }
  }

  const JsonValue* curve = doc->Get("response_curve");
  if (curve == nullptr || !curve->IsArray()) {
    violations.push_back(where + ": missing response_curve array");
  } else {
    double last = -1.0;
    for (std::size_t i = 0; i < curve->array.size(); ++i) {
      const JsonValue* occ = curve->array[i].IsObject()
                                 ? curve->array[i].Get("occupancy")
                                 : nullptr;
      if (occ == nullptr || !occ->IsNumber()) {
        violations.push_back(where + ": response_curve[" + std::to_string(i) +
                             "] has no occupancy");
        continue;
      }
      if (occ->number < last) {
        violations.push_back(where +
                             ": response_curve occupancy not non-decreasing");
        break;
      }
      last = occ->number;
    }
  }

  for (const char* key : {"iterations", "quarantines"}) {
    const JsonValue* array = doc->Get(key);
    if (array == nullptr || !array->IsArray()) {
      violations.push_back(where + ": missing '" + std::string(key) +
                           "' array");
    }
  }
  const JsonValue* verdict = GetString(*doc, "verdict", where, &violations);
  if (verdict != nullptr &&
      !OneOf(verdict->string, {"compute-bound", "latency-bound",
                               "bandwidth-bound", "under-occupied",
                               "unknown"})) {
    violations.push_back(where + ": unknown verdict '" + verdict->string +
                         "'");
  }
  return violations;
}

}  // namespace orion::telemetry
