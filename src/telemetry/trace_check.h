// Schema and invariant checks over exported traces, shared by
// tools/trace_check.cpp and tests/telemetry_test.cpp.  Contains a
// tiny self-contained JSON parser (std-only, like the rest of the
// telemetry library).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace orion::telemetry {

// Minimal JSON value for validation purposes.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  // Returns the member or nullptr.
  const JsonValue* Get(const std::string& key) const;
};

// Parses `text` as one JSON document.  On failure returns nullptr and
// sets *error to a message with a byte offset.
std::unique_ptr<JsonValue> ParseJson(std::string_view text,
                                     std::string* error);

// Validates a Chrome trace-event export.  Checks, in order:
//  - the document is valid JSON with a traceEvents array;
//  - every event has ph/name, and non-metadata events pid/tid/ts;
//  - per-tid timestamps are monotonically non-decreasing;
//  - B/E span events are balanced and properly nested per tid;
//  - at least one compiler-phase span exists (cat == "compiler");
//  - the tuner track reconstructs the Fig. 9 walk: every
//    "tuner.iteration" instant carries version + decision args, and
//    exactly one "tuner.lock" event records the final version.
// Returns a list of violations; empty means the trace passes.
std::vector<std::string> CheckChromeTrace(std::string_view json);

// Validates a JSONL export: every line is a JSON object carrying at
// least ph and name, with non-negative timestamps.
std::vector<std::string> CheckJsonl(std::string_view text);

// Validates one `orion.profile.v1` object (a parsed profile.json root,
// or the embedded per-candidate profile inside analysis.json).
// Structural checks plus the artifact's invariants: stall classes are
// non-negative and sum exactly to the SM-cycle budget, percentages are
// within [0, 100], timeline arrays have the declared bucket count,
// bucket cycles sum to the launch's cycles, bucket and per-SM
// instructions sum to warp_instructions, and per-SM blocks sum to the
// launch's blocks.  `where` prefixes every violation message.
void CheckProfileObject(const JsonValue& profile, const std::string& where,
                        std::vector<std::string>* violations);

// Validates a profile.json document (tools/trace_check --profile).
std::vector<std::string> CheckProfileJson(std::string_view json);

// Validates an analysis.json document (tools/trace_check --analysis):
// schema/identity fields, the candidate table (embedded profiles are
// checked with CheckProfileObject; null is allowed for quarantined or
// unlaunchable candidates), the lock's final_version bound, and a
// response curve sorted by occupancy.
std::vector<std::string> CheckAnalysisJson(std::string_view json);

}  // namespace orion::telemetry
