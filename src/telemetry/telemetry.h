// orion::telemetry — zero-dependency structured tracing and metrics.
//
// The subsystem is dark by default: every recording entry point is
// gated on one relaxed atomic load (`Enabled()`), so instrumented hot
// paths pay a single predictable branch when tracing is off.  When
// enabled, spans/instants accumulate into a process-wide event buffer
// and counters/gauges into a name-keyed registry; exporters
// (export.h) turn a snapshot into JSONL, Chrome trace-event JSON, or
// a text summary.
//
// This library deliberately depends on the C++ standard library only
// (no common/, no isa/) so that orion_common itself can link it
// without a dependency cycle.
//
// Conventions (see docs/OBSERVABILITY.md):
//   tracks:   "compiler", "opt", "sim", "tuner", "guard", "log"
//   spans:    dotted lowercase, e.g. "alloc.color", "isa.decode"
//   counters: dotted lowercase, e.g. "sim.cycles", "guard.retries"
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orion::telemetry {

// ---------------------------------------------------------------------------
// Global enable flag.

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// True when tracing/metrics collection is active.  Relaxed load: the
// flag is a sampling switch, not a synchronization point.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Turns collection on/off.  Enabling for the first time (or after
// Reset) pins the trace epoch to "now".
void SetEnabled(bool enabled);

// Clears all buffered events, zeroes every registered counter and
// gauge, resets the dropped-event count and re-arms the trace epoch.
// Registered Counter/Gauge references stay valid (the registry keeps
// node addresses stable and is never erased).
void Reset();

// ---------------------------------------------------------------------------
// Events.

// One key/value attachment on an event.  Values are either numeric
// (exported as JSON numbers) or strings.
struct EventArg {
  std::string key;
  std::string str;
  double num = 0.0;
  bool is_num = false;
};

EventArg Arg(std::string key, std::string value);
EventArg Arg(std::string key, std::string_view value);
EventArg Arg(std::string key, const char* value);
EventArg Arg(std::string key, double value);
EventArg Arg(std::string key, std::uint64_t value);
EventArg Arg(std::string key, std::uint32_t value);
EventArg Arg(std::string key, std::int64_t value);
EventArg Arg(std::string key, int value);
EventArg Arg(std::string key, bool value);

// A single buffered trace event.  `phase` follows the Chrome
// trace-event convention: 'B' span begin, 'E' span end, 'i' instant.
struct TraceEvent {
  char phase = 'i';
  std::string track;
  std::string name;
  std::uint64_t ts_ns = 0;   // nanoseconds since the trace epoch
  std::uint32_t thread = 0;  // dense per-process thread index
  std::uint32_t depth = 0;   // span nesting depth on that thread
  std::vector<EventArg> args;
};

// Records an instant event on `track`.  No-op when disabled.
void Instant(std::string_view track, std::string_view name,
             std::vector<EventArg> args = {});

// RAII span.  Records a 'B' event on construction and the matching
// 'E' on destruction.  The end event is recorded iff the begin was
// (decided once at construction), so B/E pairs stay balanced even if
// the flag flips mid-span.  Args attached via AddArg land on the end
// event, where durations-with-results naturally live.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view track, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // True when this span is actually recording; use to skip building
  // expensive argument values on the disabled path.
  bool active() const { return active_; }

  void AddArg(EventArg arg);
  template <typename T>
  void AddArg(std::string key, T value) {
    if (active_) {
      AddArg(Arg(std::move(key), value));
    }
  }

 private:
  bool active_ = false;
  std::string track_;
  std::string name_;
  std::uint32_t depth_ = 0;
  std::vector<EventArg> args_;
};

// Convenience macro for the common no-args case:
//   ORION_TRACE_SPAN("compiler", "alloc.color");
#define ORION_TRACE_SPAN_CAT2(a, b) a##b
#define ORION_TRACE_SPAN_CAT(a, b) ORION_TRACE_SPAN_CAT2(a, b)
#define ORION_TRACE_SPAN(track, name)                       \
  ::orion::telemetry::ScopedSpan ORION_TRACE_SPAN_CAT(      \
      orion_trace_span_, __LINE__) {                        \
    track, name                                             \
  }

// ---------------------------------------------------------------------------
// Counters and gauges.

// Monotonic counter.  Add() is gated on the global flag; AddAlways()
// skips the check for call sites that already branched on Enabled().
class Counter {
 public:
  void Add(std::uint64_t delta) {
    if (Enabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void AddAlways(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Zero() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-value / high-watermark gauge.
class Gauge {
 public:
  void Set(double value) {
    if (Enabled()) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  // Keeps the maximum of all observed values.
  void SetMax(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Zero() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// ---------------------------------------------------------------------------
// Histograms.
//
// Log2-bucketed distribution of non-negative samples, built for
// latency-style values (probe milliseconds, retry counts).  Bucket 0
// is the underflow bin (samples < 2^-32, including zero); buckets
// 1..64 cover [2^(i-33), 2^(i-32)); bucket 65 is the overflow bin
// (samples >= 2^32).  Snapshots are plain mergeable structs so
// distributions from different processes/runs can be combined without
// losing percentile fidelity beyond the bucket width.

// Number of buckets in every histogram (fixed so Merge is positional).
inline constexpr int kHistogramBuckets = 66;

// Bucket index for a sample value (see the layout above).
int HistogramBucketIndex(double value);

// Inclusive upper edge of a bucket: 2^-32 for bucket 0, 2^(i-32) for
// the log buckets, +inf for the overflow bucket.
double HistogramBucketUpperEdge(int bucket);

// A mergeable histogram snapshot.  All members are plain values: copy,
// serialize, or merge freely.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful iff count > 0
  double max = 0.0;  // meaningful iff count > 0
  std::uint64_t buckets[kHistogramBuckets] = {};

  void Add(double value);
  // Positional bucket merge; count/sum add, min/max combine.
  void Merge(const HistogramData& other);
  // Quantile estimate for q in [0, 1]: the upper edge of the first
  // bucket whose cumulative count reaches q * count, clamped to
  // [min, max] so single-sample histograms report the exact value.
  // Monotone in q by construction.  Returns 0 when empty.
  double Percentile(double q) const;
};

// Registered histogram: a mutex-guarded HistogramData.  Record() is
// gated on the global flag; RecordAlways() skips the check for call
// sites that already branched on Enabled().
class Histogram {
 public:
  void Record(double value) {
    if (Enabled()) {
      RecordAlways(value);
    }
  }
  void RecordAlways(double value);
  HistogramData Snapshot() const;
  void Zero();

 private:
  mutable std::mutex mu_;
  HistogramData data_;
};

// Returns the counter/gauge/histogram registered under `name`,
// creating it on first use.  References are stable for the process
// lifetime; cache them in a static at hot call sites.
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// Cached-lookup helpers for hot paths: one branch when disabled, one
// static-local registry lookup ever.
#define ORION_COUNTER_ADD(name, delta)                              \
  do {                                                              \
    if (::orion::telemetry::Enabled()) {                            \
      static ::orion::telemetry::Counter& orion_counter_slot_ =     \
          ::orion::telemetry::GetCounter(name);                     \
      orion_counter_slot_.AddAlways(delta);                         \
    }                                                               \
  } while (false)

#define ORION_GAUGE_SET(name, value)                                \
  do {                                                              \
    if (::orion::telemetry::Enabled()) {                            \
      static ::orion::telemetry::Gauge& orion_gauge_slot_ =         \
          ::orion::telemetry::GetGauge(name);                       \
      orion_gauge_slot_.Set(value);                                 \
    }                                                               \
  } while (false)

#define ORION_GAUGE_MAX(name, value)                                \
  do {                                                              \
    if (::orion::telemetry::Enabled()) {                            \
      static ::orion::telemetry::Gauge& orion_gauge_slot_ =         \
          ::orion::telemetry::GetGauge(name);                       \
      orion_gauge_slot_.SetMax(value);                              \
    }                                                               \
  } while (false)

#define ORION_HISTOGRAM_RECORD(name, value)                         \
  do {                                                              \
    if (::orion::telemetry::Enabled()) {                            \
      static ::orion::telemetry::Histogram& orion_histogram_slot_ = \
          ::orion::telemetry::GetHistogram(name);                   \
      orion_histogram_slot_.RecordAlways(value);                    \
    }                                                               \
  } while (false)

// ---------------------------------------------------------------------------
// Snapshots (for exporters and tests).

// Copies the buffered events in recording order.
std::vector<TraceEvent> SnapshotEvents();

// Number of events discarded because the buffer hit its soft cap.
std::uint64_t DroppedEvents();

// Name-sorted copies of all registered counters/gauges/histograms.
std::vector<std::pair<std::string, std::uint64_t>> SnapshotCounters();
std::vector<std::pair<std::string, double>> SnapshotGauges();
std::vector<std::pair<std::string, HistogramData>> SnapshotHistograms();

// Dense index of the calling thread (0 = first thread that recorded).
std::uint32_t ThreadIndex();

}  // namespace orion::telemetry
