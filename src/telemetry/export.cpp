#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "telemetry/telemetry.h"

namespace orion::telemetry {

namespace {

// Formats a double compactly: integral values print without a
// fractional part so counters stay readable.
std::string FormatNum(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

// Microsecond timestamp with nanosecond precision retained.
std::string FormatTsUs(std::uint64_t ts_ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  return buf;
}

void AppendArgs(std::ostringstream& out, const std::vector<EventArg>& args) {
  out << "{";
  bool first = true;
  for (const EventArg& arg : args) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << JsonEscape(arg.key) << "\":";
    if (arg.is_num) {
      out << FormatNum(arg.num);
    } else {
      out << "\"" << JsonEscape(arg.str) << "\"";
    }
  }
  out << "}";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJsonl() {
  const std::vector<TraceEvent> events = SnapshotEvents();
  std::ostringstream out;
  for (const TraceEvent& event : events) {
    out << "{\"ph\":\"" << event.phase << "\",\"track\":\""
        << JsonEscape(event.track) << "\",\"name\":\""
        << JsonEscape(event.name) << "\",\"ts_us\":" << FormatTsUs(event.ts_ns)
        << ",\"thread\":" << event.thread << ",\"depth\":" << event.depth;
    if (!event.args.empty()) {
      out << ",\"args\":";
      AppendArgs(out, event.args);
    }
    out << "}\n";
  }
  for (const auto& [name, value] : SnapshotCounters()) {
    out << "{\"ph\":\"C\",\"name\":\"" << JsonEscape(name)
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : SnapshotGauges()) {
    out << "{\"ph\":\"C\",\"name\":\"" << JsonEscape(name)
        << "\",\"value\":" << FormatNum(value) << "}\n";
  }
  for (const auto& [name, data] : SnapshotHistograms()) {
    out << "{\"ph\":\"H\",\"name\":\"" << JsonEscape(name)
        << "\",\"count\":" << data.count << ",\"sum\":" << FormatNum(data.sum)
        << ",\"min\":" << FormatNum(data.count ? data.min : 0.0)
        << ",\"max\":" << FormatNum(data.count ? data.max : 0.0)
        << ",\"p50\":" << FormatNum(data.Percentile(0.50))
        << ",\"p95\":" << FormatNum(data.Percentile(0.95))
        << ",\"p99\":" << FormatNum(data.Percentile(0.99)) << "}\n";
  }
  if (DroppedEvents() > 0) {
    out << "{\"ph\":\"M\",\"name\":\"dropped_events\",\"value\":"
        << DroppedEvents() << "}\n";
  }
  return out.str();
}

std::string ToChromeTrace() {
  const std::vector<TraceEvent> events = SnapshotEvents();

  // Each (track, thread) pair gets its own Chrome tid so Perfetto
  // renders named per-track timelines with correct nesting.
  std::map<std::pair<std::string, std::uint32_t>, int> tids;
  for (const TraceEvent& event : events) {
    const auto key = std::make_pair(event.track, event.thread);
    if (tids.find(key) == tids.end()) {
      const int tid = static_cast<int>(tids.size()) + 1;
      tids.emplace(key, tid);
    }
  }
  const int counters_tid = static_cast<int>(tids.size()) + 1;

  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };

  // Thread-name metadata first (ts implicitly 0).
  for (const auto& [key, tid] : tids) {
    comma();
    std::string label = key.first;
    if (key.second != 0) {
      label += "/t" + std::to_string(key.second);
    }
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << JsonEscape(label) << "\"}}";
  }
  comma();
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << counters_tid
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"counters\"}}";

  std::uint64_t max_ts_ns = 0;
  for (const TraceEvent& event : events) {
    max_ts_ns = std::max(max_ts_ns, event.ts_ns);
    const int tid = tids.at(std::make_pair(event.track, event.thread));
    comma();
    out << "{\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":" << tid
        << ",\"ts\":" << FormatTsUs(event.ts_ns) << ",\"cat\":\""
        << JsonEscape(event.track) << "\",\"name\":\""
        << JsonEscape(event.name) << "\"";
    if (event.phase == 'i') {
      out << ",\"s\":\"t\"";
    }
    if (!event.args.empty()) {
      out << ",\"args\":";
      std::ostringstream args;
      AppendArgs(args, event.args);
      out << args.str();
    }
    out << "}";
  }

  // Final counter/gauge values as Chrome counter samples.
  for (const auto& [name, value] : SnapshotCounters()) {
    comma();
    out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << counters_tid
        << ",\"ts\":" << FormatTsUs(max_ts_ns) << ",\"cat\":\"counters\""
        << ",\"name\":\"" << JsonEscape(name) << "\",\"args\":{\"value\":"
        << value << "}}";
  }
  for (const auto& [name, value] : SnapshotGauges()) {
    comma();
    out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << counters_tid
        << ",\"ts\":" << FormatTsUs(max_ts_ns) << ",\"cat\":\"counters\""
        << ",\"name\":\"" << JsonEscape(name) << "\",\"args\":{\"value\":"
        << FormatNum(value) << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

std::string ToSummary() {
  const std::vector<TraceEvent> events = SnapshotEvents();

  struct SpanAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, SpanAgg> spans;

  struct OpenSpan {
    std::string key;
    std::uint64_t ts_ns;
  };
  std::map<std::uint32_t, std::vector<OpenSpan>> stacks;
  std::uint64_t instants = 0;
  for (const TraceEvent& event : events) {
    const std::string key = event.track + "/" + event.name;
    if (event.phase == 'B') {
      stacks[event.thread].push_back({key, event.ts_ns});
    } else if (event.phase == 'E') {
      std::vector<OpenSpan>& stack = stacks[event.thread];
      if (!stack.empty() && stack.back().key == key) {
        SpanAgg& agg = spans[key];
        ++agg.count;
        agg.total_ns += event.ts_ns - stack.back().ts_ns;
        stack.pop_back();
      }
    } else {
      ++instants;
    }
  }

  std::ostringstream out;
  out << "== telemetry summary ==\n";
  char buf[256];
  if (!spans.empty()) {
    std::snprintf(buf, sizeof(buf), "%-44s %8s %12s %12s\n", "span", "count",
                  "total_ms", "mean_ms");
    out << buf;
    for (const auto& [key, agg] : spans) {
      const double total_ms = static_cast<double>(agg.total_ns) / 1e6;
      std::snprintf(buf, sizeof(buf), "%-44s %8llu %12.3f %12.3f\n",
                    key.c_str(), static_cast<unsigned long long>(agg.count),
                    total_ms, total_ms / static_cast<double>(agg.count));
      out << buf;
    }
  }
  const auto counters = SnapshotCounters();
  if (!counters.empty()) {
    out << "-- counters --\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(buf, sizeof(buf), "%-44s %16llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << buf;
    }
  }
  const auto gauges = SnapshotGauges();
  if (!gauges.empty()) {
    out << "-- gauges --\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(buf, sizeof(buf), "%-44s %16s\n", name.c_str(),
                    FormatNum(value).c_str());
      out << buf;
    }
  }
  const auto histograms = SnapshotHistograms();
  if (!histograms.empty()) {
    out << "-- histograms --\n";
    std::snprintf(buf, sizeof(buf), "%-44s %8s %12s %12s %12s %12s\n",
                  "histogram", "count", "p50", "p95", "p99", "max");
    out << buf;
    for (const auto& [name, data] : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "%-44s %8llu %12s %12s %12s %12s\n", name.c_str(),
                    static_cast<unsigned long long>(data.count),
                    FormatNum(data.Percentile(0.50)).c_str(),
                    FormatNum(data.Percentile(0.95)).c_str(),
                    FormatNum(data.Percentile(0.99)).c_str(),
                    FormatNum(data.count ? data.max : 0.0).c_str());
      out << buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "events: %llu spans+instants (%llu instants), dropped: %llu\n",
                static_cast<unsigned long long>(events.size()),
                static_cast<unsigned long long>(instants),
                static_cast<unsigned long long>(DroppedEvents()));
  out << buf;
  return out.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace orion::telemetry
