#include "profile/profile_json.h"

#include <cstdio>
#include <sstream>

namespace orion::profile {

namespace {

// Canonical number formats: every double as %.17g (round-trip exact,
// locale-independent for the values we emit), every integer as
// unsigned decimal.  No other formatting is allowed in the artifact.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Num(std::uint32_t v) { return Num(static_cast<std::uint64_t>(v)); }

const char* LimiterName(arch::OccupancyLimiter limiter) {
  switch (limiter) {
    case arch::OccupancyLimiter::kRegisters:
      return "registers";
    case arch::OccupancyLimiter::kSharedMemory:
      return "shared_memory";
    case arch::OccupancyLimiter::kWarpSlots:
      return "warp_slots";
    case arch::OccupancyLimiter::kBlockSlots:
      return "block_slots";
  }
  return "?";
}

template <typename T>
void AppendArray(std::ostringstream& out, const std::vector<T>& values) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << Num(values[i]);
  }
  out << "]";
}

}  // namespace

std::string SerializeLaunchProfile(const LaunchProfile& p) {
  const sim::SimResult& r = p.result;
  const StallBreakdown& b = p.breakdown;
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"orion.profile.v1\",\n";
  out << "  \"kernel\": \"" << p.kernel << "\",\n";
  out << "  \"gpu\": \"" << p.gpu << "\",\n";
  out << "  \"cache_config\": \"" << p.cache_config << "\",\n";
  out << "  \"launch\": {\"blocks\": " << Num(r.blocks_launched)
      << ", \"block_dim\": " << Num(p.block_dim) << "},\n";
  out << "  \"occupancy\": {\"value\": " << Num(r.occupancy.occupancy)
      << ", \"active_blocks_per_sm\": " << Num(r.occupancy.active_blocks_per_sm)
      << ", \"active_warps_per_sm\": " << Num(r.occupancy.active_warps_per_sm)
      << ", \"active_threads_per_sm\": "
      << Num(r.occupancy.active_threads_per_sm) << ", \"limiter\": \""
      << LimiterName(r.occupancy.limiter) << "\"},\n";
  out << "  \"counters\": {\"cycles\": " << Num(r.cycles)
      << ", \"ms\": " << Num(r.ms) << ", \"energy\": " << Num(r.energy)
      << ", \"warp_instructions\": " << Num(r.warp_instructions)
      << ", \"alu_instructions\": " << Num(r.alu_instructions)
      << ", \"sfu_instructions\": " << Num(r.sfu_instructions)
      << ", \"mem_instructions\": " << Num(r.mem_instructions)
      << ", \"ipc_per_sm\": "
      << Num(b.total_sm_cycles == 0
                 ? 0.0
                 : static_cast<double>(r.warp_instructions) /
                       static_cast<double>(b.total_sm_cycles))
      << ", \"l1_hits\": " << Num(r.mem.l1_hits)
      << ", \"l1_misses\": " << Num(r.mem.l1_misses)
      << ", \"l2_hits\": " << Num(r.mem.l2_hits)
      << ", \"l2_misses\": " << Num(r.mem.l2_misses)
      << ", \"dram_transactions\": " << Num(r.mem.dram_transactions)
      << ", \"smem_accesses\": " << Num(r.mem.smem_accesses) << "},\n";
  out << "  \"stall_breakdown\": {\"unit\": \"sm_cycles\", \"total\": "
      << Num(b.total_sm_cycles) << ", \"issue\": " << Num(b.issue)
      << ", \"scoreboard\": " << Num(b.scoreboard)
      << ", \"barrier\": " << Num(b.barrier)
      << ", \"smem_conflict\": " << Num(b.smem_conflict)
      << ", \"queue\": " << Num(b.queue)
      << ", \"watchdog\": " << Num(b.watchdog)
      << ", \"idle\": " << Num(b.idle) << "},\n";
  out << "  \"stall_percent\": {\"issue\": " << Num(b.Percent(b.issue))
      << ", \"scoreboard\": " << Num(b.Percent(b.scoreboard))
      << ", \"barrier\": " << Num(b.Percent(b.barrier))
      << ", \"smem_conflict\": " << Num(b.Percent(b.smem_conflict))
      << ", \"queue\": " << Num(b.Percent(b.queue))
      << ", \"watchdog\": " << Num(b.Percent(b.watchdog))
      << ", \"idle\": " << Num(b.Percent(b.idle)) << "},\n";
  out << "  \"verdict\": \"" << BottleneckVerdictName(p.verdict) << "\",\n";
  out << "  \"timeline\": {\n";
  out << "    \"buckets\": " << p.timeline.bucket_cycles.size() << ",\n";
  out << "    \"exec_start_cycle\": " << Num(p.timeline.exec_start_cycle)
      << ",\n";
  out << "    \"bucket_cycles\": ";
  AppendArray(out, p.timeline.bucket_cycles);
  out << ",\n    \"instructions\": ";
  AppendArray(out, p.timeline.instructions);
  out << ",\n    \"ipc\": ";
  AppendArray(out, p.timeline.ipc);
  out << ",\n    \"per_sm\": [\n";
  for (std::size_t s = 0; s < p.timeline.per_sm.size(); ++s) {
    const SmTimeline& sm = p.timeline.per_sm[s];
    out << "      {\"sm\": " << Num(sm.sm) << ", \"blocks\": "
        << Num(sm.blocks) << ", \"instructions\": " << Num(sm.instructions)
        << ", \"occupancy\": ";
    AppendArray(out, sm.occupancy);
    out << "}" << (s + 1 < p.timeline.per_sm.size() ? "," : "") << "\n";
  }
  out << "    ]\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

}  // namespace orion::profile
