// Per-launch profiles: stall breakdown + per-SM occupancy/IPC
// timelines, built at the launch boundary from the retired SimResult
// (the RecordSimCounters contract), so every engine produces the
// identical profile — profile.json carries no engine field and is
// byte-identical across reference/event/traced by construction.
//
// The timelines are *model-derived* time series, not per-cycle engine
// samples: instructions are spread over the execution window (after
// the launch-overhead lead-in) and blocks are assigned to SMs
// round-robin, exactly as the machine model schedules them.  They are
// fixed-bucket (<= kTimelineBuckets) and exactly conserving: bucket
// cycles sum to the launch's cycles, bucket and per-SM instructions
// sum to warp_instructions, per-SM blocks sum to blocks_launched.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/gpu_spec.h"
#include "profile/stall.h"
#include "sim/gpu_sim.h"

namespace orion::profile {

// Fixed bucket count for timelines (fewer when the launch is shorter
// than kTimelineBuckets cycles).
inline constexpr std::uint32_t kTimelineBuckets = 16;

// Stable short names for the cache configs: "sc" / "lc".
const char* CacheConfigName(arch::CacheConfig config);

struct SmTimeline {
  std::uint32_t sm = 0;
  std::uint32_t blocks = 0;             // blocks this SM executed
  std::uint64_t instructions = 0;       // warp-instructions retired here
  std::vector<double> occupancy;        // per bucket, 0 when no resident work
};

struct ProfileTimeline {
  std::uint64_t exec_start_cycle = 0;   // end of the launch-overhead lead-in
  std::vector<std::uint64_t> bucket_cycles;  // sums to the launch's cycles
  std::vector<std::uint64_t> instructions;   // sums to warp_instructions
  std::vector<double> ipc;              // instructions / (bucket_cycles * sms)
  std::vector<SmTimeline> per_sm;
};

struct LaunchProfile {
  std::string kernel;
  std::string gpu;
  std::string cache_config;  // "sc" | "lc"
  std::uint32_t block_dim = 0;
  sim::SimResult result;
  StallBreakdown breakdown;
  BottleneckVerdict verdict = BottleneckVerdict::kLatencyBound;
  ProfileTimeline timeline;
};

// Builds the full profile for one retired launch.
LaunchProfile BuildLaunchProfile(std::string_view kernel,
                                 std::uint32_t block_dim,
                                 const sim::SimResult& result,
                                 const arch::GpuSpec& spec,
                                 arch::CacheConfig config);

// ---------------------------------------------------------------------------
// Collector: an opt-in hook at the simulator's launch boundary.
//
// Dark by default, mirroring telemetry::Enabled(): the simulator pays
// one relaxed atomic load + branch per launch when collection is off
// (the < 1% disabled-overhead gate in BENCH_sim.json).  When on, each
// retired launch appends its LaunchProfile to a process-wide buffer.

namespace detail {
extern std::atomic<bool> g_collect;
}  // namespace detail

inline bool CollectionEnabled() {
  return detail::g_collect.load(std::memory_order_relaxed);
}

// Turns collection on/off; enabling does not clear prior profiles.
void EnableCollection(bool enabled);

// Appends a profile for a retired launch (called by GpuSimulator).
void CollectLaunch(std::string_view kernel, std::uint32_t block_dim,
                   const sim::SimResult& result, const arch::GpuSpec& spec,
                   arch::CacheConfig config);

// Drains the collected profiles (oldest first), leaving the buffer
// empty.
std::vector<LaunchProfile> TakeCollected();

}  // namespace orion::profile
