// Tuning-session analysis: the `orion.analysis.v1` artifact.
//
// BuildSessionAnalysis reads a *locked* tuning session back from its
// persist journal (measured iterations, quarantine events, the lock)
// and joins it with a fresh deterministic re-simulation of every
// healthy candidate: the occupancy response curve, the stall-mix shift
// between the lowest- and highest-occupancy candidates, and a
// first-cut bottleneck verdict.
//
// The analysis is resume-stable by construction: it depends only on
// journal-recovered state (which a crash-resumed session rebuilds
// identically — tests/persist_test.cpp) and on deterministic
// simulation of candidates on freshly seeded memory, so the
// analysis.json of a session that crashed and resumed N times is
// byte-identical to the uninterrupted run's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "persist/artifact.h"
#include "persist/session.h"
#include "profile/launch_profile.h"
#include "runtime/multiversion.h"
#include "sim/gpu_sim.h"

namespace orion::profile {

// One candidate version (unified primary + fail-safe numbering, the
// same numbering the tuner and the lock use).
struct CandidateAnalysis {
  std::uint32_t index = 0;
  std::string tag;
  double occupancy = 0.0;           // compile-time expected occupancy
  // Median probe runtime from the lock; NaN (serialized null) when the
  // walk never measured this candidate.
  double measured_median_ms = 0.0;
  std::string validation;           // ValidationVerdictName
  bool quarantined = false;
  std::string quarantine_reason;    // empty when not quarantined
  // Fresh deterministic re-simulation; absent (profile null) for
  // quarantined / validation-failed / launch-faulting candidates.
  bool has_profile = false;
  LaunchProfile profile;
  double simulated_ms = 0.0;        // NaN when !has_profile
};

struct IterationSummary {
  std::uint32_t iteration = 0;
  std::uint32_t version = 0;
  double ms = 0.0;
  bool faulted = false;
};

struct QuarantineSummary {
  std::uint32_t version = 0;
  std::string reason;  // QuarantineReasonName
};

struct SessionAnalysis {
  std::string kernel;
  std::string gpu;
  std::uint64_t kernel_hash = 0;
  std::string fingerprint;
  std::string direction;  // "increasing" | "decreasing"
  persist::TuneArtifact lock;
  std::vector<CandidateAnalysis> candidates;
  std::vector<IterationSummary> iterations;    // journal read-back
  std::vector<QuarantineSummary> quarantines;  // from the guard snapshot
  // Stall-mix shift endpoints: the lowest- and highest-occupancy
  // profiled candidates; absent unless two distinct occupancies were
  // profiled.
  bool has_shift = false;
  std::size_t shift_low_index = 0;
  std::size_t shift_high_index = 0;
  // The locked candidate's bottleneck verdict (falling back to the
  // first profiled candidate); absent when nothing could be profiled.
  bool has_verdict = false;
  BottleneckVerdict verdict = BottleneckVerdict::kLatencyBound;
};

struct AnalysisOptions {
  std::size_t gmem_words = std::size_t{1} << 22;
  std::vector<std::uint32_t> params;
  sim::SimEngine engine = sim::SimEngine::kEventDriven;
  std::uint64_t seed = 0x0410;  // memory-seeding RNG seed
};

// Builds the analysis for a locked session.  Throws OrionError when
// the session holds no lock (an unfinished run has no stable story to
// tell — resume it first).
SessionAnalysis BuildSessionAnalysis(persist::Session& session,
                                     const runtime::MultiVersionBinary& binary,
                                     const arch::GpuSpec& spec,
                                     arch::CacheConfig config,
                                     const AnalysisOptions& options = {});

// Canonical serialization (same rules as SerializeLaunchProfile: fixed
// key order, %.17g doubles, no timestamps).  kernel_hash is a 16-digit
// hex *string* — a u64 does not survive a double round-trip.  Ends
// with a newline.
std::string SerializeSessionAnalysis(const SessionAnalysis& analysis);

}  // namespace orion::profile
