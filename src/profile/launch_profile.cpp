#include "profile/launch_profile.h"

#include <algorithm>
#include <mutex>

namespace orion::profile {

namespace {

// Largest-remainder split of `amount` proportional to `weights` (see
// stall.cpp for the rationale); here weights fit comfortably, but the
// 128-bit product keeps the same exactness guarantee.
std::vector<std::uint64_t> Split(std::uint64_t amount,
                                 const std::vector<std::uint64_t>& weights) {
  std::vector<std::uint64_t> shares(weights.size(), 0);
  unsigned __int128 total = 0;
  for (const std::uint64_t w : weights) {
    total += w;
  }
  if (total == 0) {
    return shares;
  }
  std::vector<unsigned __int128> remainders(weights.size(), 0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const unsigned __int128 scaled =
        static_cast<unsigned __int128>(amount) * weights[i];
    shares[i] = static_cast<std::uint64_t>(scaled / total);
    remainders[i] = scaled % total;
    assigned += shares[i];
  }
  for (std::uint64_t left = amount - assigned; left > 0; --left) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < weights.size(); ++i) {
      if (remainders[i] > remainders[best]) {
        best = i;
      }
    }
    ++shares[best];
    remainders[best] = 0;
  }
  return shares;
}

ProfileTimeline BuildTimeline(const sim::SimResult& result,
                              const arch::GpuSpec& spec) {
  ProfileTimeline timeline;
  const std::uint64_t cycles = result.cycles;
  const std::uint32_t buckets = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      kTimelineBuckets, std::max<std::uint64_t>(1, cycles)));

  // Equal-width buckets via largest remainder: sum == cycles exactly.
  timeline.bucket_cycles = Split(cycles, std::vector<std::uint64_t>(buckets, 1));

  // The launch-overhead lead-in has no resident work; instructions and
  // occupancy live in the execution window after it.
  timeline.exec_start_cycle =
      std::min<std::uint64_t>(cycles, spec.timing.kernel_launch_overhead);
  const std::uint64_t exec_cycles = cycles - timeline.exec_start_cycle;

  // Per-bucket instruction weights: the overlap of each bucket with
  // the execution window.
  std::vector<std::uint64_t> overlap(buckets, 0);
  std::uint64_t bucket_start = 0;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const std::uint64_t bucket_end = bucket_start + timeline.bucket_cycles[b];
    const std::uint64_t lo = std::max(bucket_start, timeline.exec_start_cycle);
    overlap[b] = bucket_end > lo ? bucket_end - lo : 0;
    bucket_start = bucket_end;
  }
  if (exec_cycles == 0) {
    // Degenerate launch shorter than its own overhead: charge the last
    // bucket so conservation still holds.
    overlap.back() = 1;
  }
  timeline.instructions = Split(result.warp_instructions, overlap);
  timeline.ipc.resize(buckets, 0.0);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    if (timeline.bucket_cycles[b] > 0) {
      timeline.ipc[b] = static_cast<double>(timeline.instructions[b]) /
                        static_cast<double>(timeline.bucket_cycles[b]) /
                        spec.num_sms;
    }
  }

  // Per-SM rows: blocks go to SMs round-robin (block i runs on SM
  // i mod num_sms, the machine model's install order); instructions
  // split proportionally to block count; occupancy holds during the
  // execution window on SMs that got work.
  timeline.per_sm.resize(spec.num_sms);
  std::vector<std::uint64_t> block_weights(spec.num_sms, 0);
  for (std::uint32_t s = 0; s < spec.num_sms; ++s) {
    const std::uint32_t blocks =
        result.blocks_launched / spec.num_sms +
        (s < result.blocks_launched % spec.num_sms ? 1 : 0);
    timeline.per_sm[s].sm = s;
    timeline.per_sm[s].blocks = blocks;
    block_weights[s] = blocks;
  }
  if (result.blocks_launched == 0) {
    block_weights[0] = 1;  // conservation: all instructions land on SM 0
  }
  const std::vector<std::uint64_t> sm_instructions =
      Split(result.warp_instructions, block_weights);
  for (std::uint32_t s = 0; s < spec.num_sms; ++s) {
    timeline.per_sm[s].instructions = sm_instructions[s];
    timeline.per_sm[s].occupancy.resize(buckets, 0.0);
    if (timeline.per_sm[s].blocks == 0) {
      continue;
    }
    for (std::uint32_t b = 0; b < buckets; ++b) {
      if (overlap[b] > 0 && exec_cycles > 0) {
        timeline.per_sm[s].occupancy[b] = result.occupancy.occupancy;
      }
    }
  }
  return timeline;
}

struct CollectorState {
  std::mutex mu;
  std::vector<LaunchProfile> profiles;
};

CollectorState& GetCollector() {
  static CollectorState* state = new CollectorState();  // leaked, like telemetry
  return *state;
}

}  // namespace

namespace detail {
std::atomic<bool> g_collect{false};
}  // namespace detail

const char* CacheConfigName(arch::CacheConfig config) {
  return config == arch::CacheConfig::kSmallCache ? "sc" : "lc";
}

LaunchProfile BuildLaunchProfile(std::string_view kernel,
                                 std::uint32_t block_dim,
                                 const sim::SimResult& result,
                                 const arch::GpuSpec& spec,
                                 arch::CacheConfig config) {
  LaunchProfile profile;
  profile.kernel = std::string(kernel);
  profile.gpu = spec.name;
  profile.cache_config = CacheConfigName(config);
  profile.block_dim = block_dim;
  profile.result = result;
  profile.breakdown = ComputeStallBreakdown(result, spec);
  profile.verdict = ClassifyBottleneck(profile.breakdown);
  profile.timeline = BuildTimeline(result, spec);
  return profile;
}

void EnableCollection(bool enabled) {
  detail::g_collect.store(enabled, std::memory_order_relaxed);
}

void CollectLaunch(std::string_view kernel, std::uint32_t block_dim,
                   const sim::SimResult& result, const arch::GpuSpec& spec,
                   arch::CacheConfig config) {
  LaunchProfile profile =
      BuildLaunchProfile(kernel, block_dim, result, spec, config);
  CollectorState& state = GetCollector();
  std::lock_guard<std::mutex> lock(state.mu);
  state.profiles.push_back(std::move(profile));
}

std::vector<LaunchProfile> TakeCollected() {
  CollectorState& state = GetCollector();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<LaunchProfile> out;
  out.swap(state.profiles);
  return out;
}

}  // namespace orion::profile
