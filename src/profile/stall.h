// Stall attribution: where did the SM-cycles of a launch go?
//
// The profiler attributes every simulated SM-cycle of a finished
// launch to one cause class.  Attribution happens at the launch
// boundary, from the retired SimResult plus the architecture model —
// the same contract as RecordSimCounters — so all three engines
// produce identical breakdowns by construction (the engines are
// bit-identical in SimResult, enforced by determinism_test.cpp).
// Nothing here hooks per-cycle engine state.
//
// The cycle budget is `cycles * num_sms` SM-cycles.  It is carved up
// exactly (integer arithmetic, largest-remainder rounding), so the
// classes always sum to the budget — the conservation invariant the
// schema validator and tests assert.
#pragma once

#include <cstdint>
#include <string>

#include "arch/gpu_spec.h"
#include "sim/gpu_sim.h"

namespace orion::profile {

// Cause classes, in serialization order.
struct StallBreakdown {
  std::uint64_t total_sm_cycles = 0;  // cycles * num_sms

  std::uint64_t issue = 0;           // cycles spent issuing instructions
  std::uint64_t scoreboard = 0;      // memory-latency dependency stalls
  std::uint64_t barrier = 0;         // __syncthreads / control overhead
  std::uint64_t smem_conflict = 0;   // shared-memory bank-conflict serialization
  std::uint64_t queue = 0;           // L2/DRAM bandwidth queueing
  std::uint64_t watchdog = 0;        // cycles lost to an aborted launch
  std::uint64_t idle = 0;            // no resident warp (launch/install/drain)

  // Always equals total_sm_cycles for breakdowns built by
  // ComputeStallBreakdown (conservation by construction).
  std::uint64_t Sum() const {
    return issue + scoreboard + barrier + smem_conflict + queue + watchdog +
           idle;
  }
  // Percent of the total budget, 0 when the budget is empty.
  double Percent(std::uint64_t class_cycles) const;
};

// First-cut bottleneck taxonomy (ROADMAP item 2; the classes of Lim et
// al.'s static/predictive analysis).
enum class BottleneckVerdict : std::uint8_t {
  kComputeBound = 0,   // issue dominates: the ALUs are the wall
  kLatencyBound,       // dependency stalls dominate: more warps would help
  kBandwidthBound,     // L2/DRAM queueing dominates: more warps would not
  kUnderOccupied,      // idle SM-cycles dominate: not enough resident work
};

// Stable lowercase names: "compute-bound", "latency-bound",
// "bandwidth-bound", "under-occupied".
const char* BottleneckVerdictName(BottleneckVerdict verdict);

// Attributes every SM-cycle of the launch to a cause class.  Exact:
// the returned classes sum to cycles * num_sms.
StallBreakdown ComputeStallBreakdown(const sim::SimResult& result,
                                     const arch::GpuSpec& spec);

// Largest class wins; grouped as issue -> compute, scoreboard +
// barrier + smem -> latency, queue -> bandwidth, idle + watchdog ->
// under-occupied.  Deterministic tie order (latency, bandwidth,
// compute, under-occupied).
BottleneckVerdict ClassifyBottleneck(const StallBreakdown& breakdown);

// One human-readable line per cause class with percentages, appended
// to FormatSimReport and rendered into profile.json from the same
// struct so the two can never disagree.
std::string FormatStallBreakdown(const StallBreakdown& breakdown);

}  // namespace orion::profile
