// Canonical serialization of LaunchProfile to the versioned
// `orion.profile.v1` JSON artifact.
//
// The output is canonical: fixed key order, doubles printed with
// "%.17g" (round-trip exact), integers unsigned-decimal, no
// timestamps and no engine field — so two profiles of bit-identical
// launches serialize byte-identically regardless of which engine ran
// them or when.  The schema is validated by
// telemetry::CheckProfileJson (tools/trace_check --profile) and
// documented in docs/OBSERVABILITY.md.
#pragma once

#include <string>

#include "profile/launch_profile.h"

namespace orion::profile {

// Serializes one launch profile; ends with a newline.
std::string SerializeLaunchProfile(const LaunchProfile& profile);

}  // namespace orion::profile
