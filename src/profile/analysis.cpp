#include "profile/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "profile/profile_json.h"
#include "runtime/guard.h"

namespace orion::profile {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Deterministic memory seeding, identical to the orion-cc run path so
// the re-simulated candidates see the same inputs the tuner did.
sim::GlobalMemory SeedAnalysisMemory(const AnalysisOptions& options) {
  sim::GlobalMemory gmem(options.gmem_words);
  Rng rng(options.seed);
  for (std::size_t i = 0; i < options.gmem_words; ++i) {
    gmem.Write(i, static_cast<std::uint32_t>(rng.NextBounded(1000)) + 1);
  }
  return gmem;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Num(std::uint32_t v) { return Num(static_cast<std::uint64_t>(v)); }

std::string NumOrNull(double v) { return std::isnan(v) ? "null" : Num(v); }

const char* Bool(bool v) { return v ? "true" : "false"; }

std::string HexHash(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

// Prefixes every line after the first with `prefix` and drops the
// trailing newline, so a standalone serialized document can be
// embedded as a JSON value at any depth.
std::string IndentBlock(const std::string& text, const char* prefix) {
  std::string body = text;
  if (!body.empty() && body.back() == '\n') {
    body.pop_back();
  }
  std::string out;
  out.reserve(body.size() + 64);
  for (char c : body) {
    out.push_back(c);
    if (c == '\n') {
      out += prefix;
    }
  }
  return out;
}

std::string PercentObject(const StallBreakdown& b) {
  std::ostringstream out;
  out << "{\"issue\": " << Num(b.Percent(b.issue))
      << ", \"scoreboard\": " << Num(b.Percent(b.scoreboard))
      << ", \"barrier\": " << Num(b.Percent(b.barrier))
      << ", \"smem_conflict\": " << Num(b.Percent(b.smem_conflict))
      << ", \"queue\": " << Num(b.Percent(b.queue))
      << ", \"watchdog\": " << Num(b.Percent(b.watchdog))
      << ", \"idle\": " << Num(b.Percent(b.idle)) << "}";
  return out.str();
}

std::string ShiftEndpoint(const CandidateAnalysis& c) {
  std::ostringstream out;
  out << "{\"index\": " << Num(c.index) << ", \"tag\": \"" << c.tag
      << "\", \"occupancy\": " << Num(c.occupancy)
      << ", \"percent\": " << PercentObject(c.profile.breakdown) << "}";
  return out.str();
}

}  // namespace

SessionAnalysis BuildSessionAnalysis(persist::Session& session,
                                     const runtime::MultiVersionBinary& binary,
                                     const arch::GpuSpec& spec,
                                     arch::CacheConfig config,
                                     const AnalysisOptions& options) {
  if (!session.HasLock()) {
    throw OrionError("session at '" + session.dir() +
                     "' holds no lock — resume the tuning run to completion "
                     "before asking for a report");
  }
  SessionAnalysis out;
  out.kernel = binary.kernel_name;
  out.gpu = spec.name;
  out.kernel_hash = session.meta().kernel_hash;
  out.fingerprint = session.meta().fingerprint;
  out.direction = binary.direction == runtime::TuneDirection::kIncreasing
                      ? "increasing"
                      : "decreasing";
  out.lock = session.lock();

  // Quarantines are read back from the journal's guard snapshot — the
  // resume-stable record — not re-derived.
  std::map<std::uint32_t, runtime::QuarantineReason> quarantined;
  if (const runtime::HealthReport* health = session.guard_health()) {
    for (const runtime::Quarantine& q : health->quarantined) {
      quarantined.emplace(q.version, q.reason);
      out.quarantines.push_back(
          {q.version, runtime::QuarantineReasonName(q.reason)});
    }
  }

  for (std::size_t i = 0; i < binary.NumCandidates(); ++i) {
    const runtime::KernelVersion& version = binary.Candidate(i);
    CandidateAnalysis c;
    c.index = static_cast<std::uint32_t>(i);
    c.tag = version.tag;
    c.occupancy = version.occupancy.occupancy;
    c.measured_median_ms = i < out.lock.candidate_median_ms.size()
                               ? out.lock.candidate_median_ms[i]
                               : kNan;
    c.validation = runtime::ValidationVerdictName(version.validation.verdict);
    const auto found = quarantined.find(c.index);
    if (found != quarantined.end()) {
      c.quarantined = true;
      c.quarantine_reason = runtime::QuarantineReasonName(found->second);
    }
    c.simulated_ms = kNan;
    // Quarantined and validation-rejected candidates are reported but
    // never re-executed — the guard's verdict stands.
    if (!c.quarantined && !version.validation.Failed()) {
      sim::GpuSimulator sim(spec, config, options.engine);
      sim::GlobalMemory gmem = SeedAnalysisMemory(options);
      try {
        const sim::SimResult result =
            sim.LaunchAll(binary.ModuleOf(version), &gmem, options.params,
                          version.smem_padding_bytes);
        c.profile = BuildLaunchProfile(
            binary.kernel_name, binary.ModuleOf(version).launch.block_dim,
            result, spec, config);
        c.has_profile = true;
        c.simulated_ms = result.ms;
      } catch (const LaunchError&) {
        // A candidate that cannot launch at analysis time is reported
        // without a profile, never fatal to the report.
      }
    }
    out.candidates.push_back(std::move(c));
  }

  for (const auto& [iteration, record] : session.recorded()) {
    out.iterations.push_back(
        {iteration, record.version, record.ms, record.faulted});
  }

  // Shift endpoints: lowest- and highest-occupancy profiled candidates
  // (first match on ties — deterministic), requiring two *distinct*
  // occupancy levels.
  bool any = false;
  std::size_t low = 0;
  std::size_t high = 0;
  for (std::size_t i = 0; i < out.candidates.size(); ++i) {
    if (!out.candidates[i].has_profile) {
      continue;
    }
    if (!any) {
      any = true;
      low = high = i;
      continue;
    }
    if (out.candidates[i].occupancy < out.candidates[low].occupancy) {
      low = i;
    }
    if (out.candidates[i].occupancy > out.candidates[high].occupancy) {
      high = i;
    }
  }
  if (any && out.candidates[low].occupancy < out.candidates[high].occupancy) {
    out.has_shift = true;
    out.shift_low_index = low;
    out.shift_high_index = high;
  }

  // Verdict: the locked candidate's, falling back to the first
  // profiled candidate.
  if (out.lock.final_version < out.candidates.size() &&
      out.candidates[out.lock.final_version].has_profile) {
    out.has_verdict = true;
    out.verdict = out.candidates[out.lock.final_version].profile.verdict;
  } else if (any) {
    out.has_verdict = true;
    out.verdict = out.candidates[low].profile.verdict;
  }
  return out;
}

std::string SerializeSessionAnalysis(const SessionAnalysis& a) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"orion.analysis.v1\",\n";
  out << "  \"kernel\": \"" << a.kernel << "\",\n";
  out << "  \"gpu\": \"" << a.gpu << "\",\n";
  out << "  \"kernel_hash\": \"" << HexHash(a.kernel_hash) << "\",\n";
  out << "  \"fingerprint\": \"" << a.fingerprint << "\",\n";
  out << "  \"direction\": \"" << a.direction << "\",\n";
  out << "  \"lock\": {\"final_version\": " << Num(a.lock.final_version)
      << ", \"iterations_to_settle\": " << Num(a.lock.iterations_to_settle)
      << ", \"steady_ms\": " << Num(a.lock.steady_ms)
      << ", \"steady_energy\": " << Num(a.lock.steady_energy)
      << ", \"steady_occupancy\": " << Num(a.lock.steady_occupancy)
      << ", \"fallback_taken\": " << Bool(a.lock.fallback_taken)
      << ", \"watchdog_trips\": " << Num(a.lock.watchdog_trips)
      << ", \"faulted_iterations\": " << Num(a.lock.faulted_iterations)
      << "},\n";
  out << "  \"candidates\": [\n";
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateAnalysis& c = a.candidates[i];
    out << "    {\n";
    out << "      \"index\": " << Num(c.index) << ",\n";
    out << "      \"tag\": \"" << c.tag << "\",\n";
    out << "      \"occupancy\": " << Num(c.occupancy) << ",\n";
    out << "      \"measured_median_ms\": " << NumOrNull(c.measured_median_ms)
        << ",\n";
    out << "      \"validation\": \"" << c.validation << "\",\n";
    out << "      \"quarantined\": " << Bool(c.quarantined) << ",\n";
    out << "      \"quarantine_reason\": "
        << (c.quarantined ? "\"" + c.quarantine_reason + "\"" : "null")
        << ",\n";
    out << "      \"simulated_ms\": " << NumOrNull(c.simulated_ms) << ",\n";
    out << "      \"profile\": ";
    if (c.has_profile) {
      out << IndentBlock(SerializeLaunchProfile(c.profile), "      ");
    } else {
      out << "null";
    }
    out << "\n    }" << (i + 1 < a.candidates.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Response curve: candidates sorted by occupancy (stable on index).
  std::vector<std::size_t> order(a.candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return a.candidates[x].occupancy <
                            a.candidates[y].occupancy;
                   });
  out << "  \"response_curve\": [";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const CandidateAnalysis& c = a.candidates[order[i]];
    out << (i > 0 ? "," : "") << "\n    {\"occupancy\": " << Num(c.occupancy)
        << ", \"tag\": \"" << c.tag << "\", \"measured_median_ms\": "
        << NumOrNull(c.measured_median_ms)
        << ", \"simulated_ms\": " << NumOrNull(c.simulated_ms) << "}";
  }
  out << (order.empty() ? "],\n" : "\n  ],\n");
  if (a.has_shift) {
    const CandidateAnalysis& low = a.candidates[a.shift_low_index];
    const CandidateAnalysis& high = a.candidates[a.shift_high_index];
    const StallBreakdown& lb = low.profile.breakdown;
    const StallBreakdown& hb = high.profile.breakdown;
    out << "  \"stall_shift\": {\n";
    out << "    \"low\": " << ShiftEndpoint(low) << ",\n";
    out << "    \"high\": " << ShiftEndpoint(high) << ",\n";
    out << "    \"delta\": {\"issue\": "
        << Num(hb.Percent(hb.issue) - lb.Percent(lb.issue))
        << ", \"scoreboard\": "
        << Num(hb.Percent(hb.scoreboard) - lb.Percent(lb.scoreboard))
        << ", \"barrier\": "
        << Num(hb.Percent(hb.barrier) - lb.Percent(lb.barrier))
        << ", \"smem_conflict\": "
        << Num(hb.Percent(hb.smem_conflict) - lb.Percent(lb.smem_conflict))
        << ", \"queue\": " << Num(hb.Percent(hb.queue) - lb.Percent(lb.queue))
        << ", \"watchdog\": "
        << Num(hb.Percent(hb.watchdog) - lb.Percent(lb.watchdog))
        << ", \"idle\": " << Num(hb.Percent(hb.idle) - lb.Percent(lb.idle))
        << "}\n";
    out << "  },\n";
  } else {
    out << "  \"stall_shift\": null,\n";
  }
  out << "  \"iterations\": [";
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const IterationSummary& it = a.iterations[i];
    out << (i > 0 ? "," : "") << "\n    {\"iteration\": " << Num(it.iteration)
        << ", \"version\": " << Num(it.version) << ", \"ms\": " << Num(it.ms)
        << ", \"faulted\": " << Bool(it.faulted) << "}";
  }
  out << (a.iterations.empty() ? "],\n" : "\n  ],\n");
  out << "  \"quarantines\": [";
  for (std::size_t i = 0; i < a.quarantines.size(); ++i) {
    out << (i > 0 ? "," : "") << "\n    {\"version\": "
        << Num(a.quarantines[i].version) << ", \"reason\": \""
        << a.quarantines[i].reason << "\"}";
  }
  out << (a.quarantines.empty() ? "],\n" : "\n  ],\n");
  out << "  \"verdict\": \""
      << (a.has_verdict ? BottleneckVerdictName(a.verdict) : "unknown")
      << "\"\n";
  out << "}\n";
  return out.str();
}

}  // namespace orion::profile
