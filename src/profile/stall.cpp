#include "profile/stall.h"

#include <algorithm>
#include <cstdio>

namespace orion::profile {

namespace {

// Largest-remainder apportionment of `amount` across `n` weights:
// each share is floor(amount * w / total), and the leftover units go
// to the largest fractional remainders (ties to the lower index), so
// the shares always sum to `amount` exactly.  128-bit intermediates:
// amount * weight overflows 64 bits on long launches.
void Apportion(std::uint64_t amount, const std::uint64_t* weights,
               std::uint64_t* shares, int n) {
  unsigned __int128 total = 0;
  for (int i = 0; i < n; ++i) {
    total += weights[i];
  }
  if (total == 0) {
    for (int i = 0; i < n; ++i) {
      shares[i] = 0;
    }
    return;
  }
  unsigned __int128 remainders[8] = {};
  std::uint64_t assigned = 0;
  for (int i = 0; i < n; ++i) {
    const unsigned __int128 scaled =
        static_cast<unsigned __int128>(amount) * weights[i];
    shares[i] = static_cast<std::uint64_t>(scaled / total);
    remainders[i] = scaled % total;
    assigned += shares[i];
  }
  for (std::uint64_t left = amount - assigned; left > 0; --left) {
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (remainders[i] > remainders[best]) {
        best = i;
      }
    }
    ++shares[best];
    remainders[best] = 0;
  }
}

std::uint64_t SaturatingSub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

double StallBreakdown::Percent(std::uint64_t class_cycles) const {
  if (total_sm_cycles == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(class_cycles) /
         static_cast<double>(total_sm_cycles);
}

const char* BottleneckVerdictName(BottleneckVerdict verdict) {
  switch (verdict) {
    case BottleneckVerdict::kComputeBound:
      return "compute-bound";
    case BottleneckVerdict::kLatencyBound:
      return "latency-bound";
    case BottleneckVerdict::kBandwidthBound:
      return "bandwidth-bound";
    case BottleneckVerdict::kUnderOccupied:
      return "under-occupied";
  }
  return "?";
}

StallBreakdown ComputeStallBreakdown(const sim::SimResult& result,
                                     const arch::GpuSpec& spec) {
  const arch::TimingParams& t = spec.timing;
  StallBreakdown out;
  out.total_sm_cycles = result.cycles * spec.num_sms;
  std::uint64_t remaining = out.total_sm_cycles;

  // Idle: launch overhead and block installation are SM-cycles with no
  // resident warp to issue from (the machine model charges both before
  // any instruction retires).
  out.idle = std::min<std::uint64_t>(
      remaining,
      static_cast<std::uint64_t>(t.kernel_launch_overhead) * spec.num_sms +
          static_cast<std::uint64_t>(result.blocks_launched) *
              t.block_install_cycles);
  remaining -= out.idle;

  // Issue: one issue *slot* per warp-instruction plus the extra slots
  // an SFU op occupies (2^k total), converted to SM-cycles by the
  // machine's issue width (Kepler dual-issues; Fermi is single-issue).
  const std::uint64_t issue_slots =
      result.warp_instructions +
      result.sfu_instructions * ((1ull << t.sfu_throughput_shift) - 1);
  const std::uint64_t width = std::max<std::uint32_t>(1, t.warp_issue_per_cycle);
  out.issue = std::min<std::uint64_t>(remaining,
                                      (issue_slots + width - 1) / width);
  remaining -= out.issue;

  // Everything left is stall time; prorate it over the model's stall
  // weights.  Latency-class weights divide by resident warps — that is
  // the paper's whole premise: more resident warps hide more of the
  // same dependency latency.
  const std::uint64_t warps =
      std::max<std::uint32_t>(1, result.occupancy.active_warps_per_sm);
  const std::uint64_t scoreboard_w =
      (result.mem.l1_hits * t.l1_latency + result.mem.l2_hits * t.l2_latency +
       result.mem.dram_transactions * t.dram_latency) /
      warps;
  const std::uint64_t smem_w =
      result.mem.smem_accesses * t.smem_latency / warps;
  const std::uint64_t barrier_w =
      SaturatingSub(result.warp_instructions,
                    result.alu_instructions + result.sfu_instructions +
                        result.mem_instructions) *
      t.barrier_latency;
  // Bandwidth queueing does not shrink with more warps: the token
  // buckets are chip-wide.
  const std::uint64_t queue_w =
      static_cast<std::uint64_t>(
          static_cast<double>(result.mem.dram_transactions) /
          t.dram_transactions_per_cycle) +
      static_cast<std::uint64_t>(
          static_cast<double>(result.mem.l2_hits + result.mem.l2_misses) /
          t.l2_transactions_per_cycle);

  const std::uint64_t weights[4] = {scoreboard_w, barrier_w, smem_w, queue_w};
  std::uint64_t shares[4] = {};
  Apportion(remaining, weights, shares, 4);
  out.scoreboard = shares[0];
  out.barrier = shares[1];
  out.smem_conflict = shares[2];
  out.queue = shares[3];

  // All weights zero (e.g. a pure-ALU kernel whose cycles are fully
  // covered by issue): the residual is drain time with nothing to
  // issue — idle.
  const std::uint64_t attributed = shares[0] + shares[1] + shares[2] + shares[3];
  out.idle += remaining - attributed;
  return out;
}

BottleneckVerdict ClassifyBottleneck(const StallBreakdown& b) {
  const std::uint64_t latency = b.scoreboard + b.barrier + b.smem_conflict;
  const std::uint64_t bandwidth = b.queue;
  const std::uint64_t compute = b.issue;
  const std::uint64_t under = b.idle + b.watchdog;

  // Fixed evaluation order; strictly-greater replaces, so ties resolve
  // to the earlier class deterministically.
  BottleneckVerdict verdict = BottleneckVerdict::kLatencyBound;
  std::uint64_t best = latency;
  if (bandwidth > best) {
    verdict = BottleneckVerdict::kBandwidthBound;
    best = bandwidth;
  }
  if (compute > best) {
    verdict = BottleneckVerdict::kComputeBound;
    best = compute;
  }
  if (under > best) {
    verdict = BottleneckVerdict::kUnderOccupied;
  }
  return verdict;
}

std::string FormatStallBreakdown(const StallBreakdown& b) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "stall breakdown: issue %.1f%%, scoreboard %.1f%%, barrier %.1f%%, "
      "smem-conflict %.1f%%, queue %.1f%%, watchdog %.1f%%, idle %.1f%% "
      "(%llu SM-cycles)\n"
      "bottleneck     : %s\n",
      b.Percent(b.issue), b.Percent(b.scoreboard), b.Percent(b.barrier),
      b.Percent(b.smem_conflict), b.Percent(b.queue), b.Percent(b.watchdog),
      b.Percent(b.idle), static_cast<unsigned long long>(b.total_sm_cycles),
      BottleneckVerdictName(ClassifyBottleneck(b)));
  return buf;
}

}  // namespace orion::profile
