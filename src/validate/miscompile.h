// Seeded miscompile injector for the translation validator.
//
// Applies one deliberate corruption of an occupancy-realized module —
// the allocator-output failure shapes Theorem 1's compressible-stack
// discipline makes dangerous.  The corruption *class* is drawn by
// common/faultinject (MiscompileKind); this file owns the actual module
// mutation, picking the site deterministically from `seed`.  The
// injector exists to prove the differential validator (validate.h)
// catches real allocator bugs: every applied class must surface as a
// failing ValidationVerdict.
#pragma once

#include <cstdint>

#include "common/faultinject.h"
#include "isa/isa.h"

namespace orion::validate {

// Mutates `module` in place with one corruption of `kind`, choosing the
// site from `seed`.  Returns true when an applicable site existed and
// was mutated; false when the module offers no site for this class
// (e.g. kSwapSpill on a module that never spills) — the caller must
// then treat the candidate as uncorrupted.
bool ApplyMiscompile(isa::Module* module, MiscompileKind kind,
                     std::uint64_t seed);

}  // namespace orion::validate
