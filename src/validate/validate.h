// Differential translation validation for occupancy-realized binaries.
//
// Occupancy realization (src/alloc) rewrites every function: coloring,
// spilling, shared-memory re-homing and the compressible-stack
// park/restore discipline of Theorem 1.  A bug in any of those passes
// produces a candidate that runs — and silently computes the wrong
// answer.  This subsystem closes that hole with translation validation:
// each realized candidate is co-simulated against the virtual original
// on deterministic probe inputs, and the final global-memory images
// plus the architectural exit state (threads retired, barrier rounds)
// must match bit for bit.
//
// The gate is wired into core::CompileMultiVersion /
// core::EnumerateAllVersions behind TuneOptions::validate: failing
// candidates keep their verdict on the KernelVersion, are pre-
// quarantined by runtime::LaunchGuard, and are never entered by the
// Fig. 9 feedback walk.  Version 0 (the original-occupancy compile) is
// exempt — it is the always-safe fallback, and padded variants sharing
// its binary inherit the exemption.
//
// See docs/VALIDATION.md for the probe-input design and verdict
// semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "runtime/multiversion.h"
#include "sim/interpreter.h"
#include "sim/memory.h"

namespace orion::validate {

struct ProbeOptions {
  // Number of independent probe inputs each candidate is checked on.
  std::uint32_t probes = 2;
  // Seed for the probe memory contents; probe i derives its own stream.
  std::uint64_t seed = 0x0A11;
  // Minimum probe global-memory size.  The validator grows the actual
  // image to the reference's static address footprint (see
  // EffectiveProbeWords): the interpreter's global memory is bounds-safe
  // (OOB reads return 0, OOB writes drop), so a probe smaller than the
  // kernel's footprint would silently hide everything the kernel stores
  // beyond it.
  std::uint32_t gmem_words = 1u << 16;
  // Cap on the number of blocks interpreted per probe (0 = full grid).
  std::uint32_t max_blocks = 0;
  // Kernel parameter words for the probe runs.  Empty by default —
  // matching how orion-cc launches workloads — so kernels see zeros for
  // absent parameters and loop bounds stay benign.
  std::vector<std::uint32_t> params;
  // Per-thread step cap for each co-simulation; a candidate exceeding
  // it faults the probe (kExecutionFault), a reference exceeding it
  // leaves the verdict kNotValidated.
  std::uint64_t max_steps_per_thread = 2'000'000;
  // Execute the virtual reference once per probe and compare every
  // candidate against its cached final-memory image and exit state
  // (ReferenceCache) instead of re-co-simulating the reference per
  // candidate.  The interpreter is deterministic, so verdicts are
  // identical either way (tests/validate_test.cpp); off reproduces the
  // per-candidate reference cost — the bench/micro_compiler baseline.
  bool reuse_reference = true;
};

// Deterministic probe memory for probe index `probe`: identical word
// streams feed the reference and the candidate.
sim::GlobalMemory MakeProbeMemory(const ProbeOptions& options,
                                  std::uint32_t probe);

// The probe image size the validator actually uses for `reference`:
// options.gmem_words grown to cover the module's largest static
// global-access offset.  Out-of-range stores are dropped by the
// interpreter, so an image smaller than the address footprint makes the
// kernel's output unobservable — a probe against it would pass any
// miscompile.  Callers reproducing the validator's co-simulation
// geometry (tests, ground-truth checks) must size memory with this.
std::uint32_t EffectiveProbeWords(const ProbeOptions& options,
                                  const isa::Module& reference);

// FNV-1a 64-bit checksum of a memory image (golden-output self-checks,
// tests/workloads).
std::uint64_t ChecksumMemory(const sim::GlobalMemory& memory);

// The reference side of the co-simulation, executed at most once per
// probe index and cached: the effective probe footprint
// (EffectiveProbeWords, computed in the constructor) plus, lazily, the
// reference's final memory image and exit stats — or its fault, which
// is cached the same way (every candidate then reports kNotValidated,
// exactly as if the reference had been re-run).  `reference` must
// outlive the cache.  Runs are filled on demand from ValidateModule, so
// a binary whose candidates all fail structural verification never
// executes the reference at all.  Not thread-safe: the validation gate
// walks candidates serially.
class ReferenceCache {
 public:
  ReferenceCache(const isa::Module& reference, const ProbeOptions& options);
  ~ReferenceCache();
  ReferenceCache(ReferenceCache&&) noexcept;
  ReferenceCache& operator=(ReferenceCache&&) noexcept;

  const isa::Module& reference() const { return *reference_; }
  // Caller options with gmem_words grown to the effective footprint.
  const ProbeOptions& options() const { return options_; }
  // Blocks interpreted per probe (max_blocks-capped grid).
  std::uint32_t blocks() const { return blocks_; }
  // Number of probes whose reference run actually executed so far.
  std::uint32_t runs_executed() const;

  struct ProbeRun {
    bool faulted = false;
    std::string fault_detail;        // OrionError::what() when faulted
    sim::GlobalMemory memory{0};     // final image (valid when !faulted)
    sim::InterpStats stats;
  };
  // The cached reference run for `probe`, executing it on first use.
  const ProbeRun& Run(std::uint32_t probe);

 private:
  const isa::Module* reference_;
  ProbeOptions options_;
  std::uint32_t blocks_ = 0;
  std::vector<std::unique_ptr<ProbeRun>> runs_;  // per probe, lazy
};

// Differentially validates one candidate module against its reference:
// structural verification (within the candidate's own declared resource
// usage), then co-simulation on `options.probes` probe inputs.  Returns
// the verdict plus the first failure's detail.  Never throws on a bad
// candidate — corruption surfaces as a failing verdict.
runtime::ValidationRecord ValidateModule(const isa::Module& reference,
                                         const isa::Module& candidate,
                                         const ProbeOptions& options = {});

// As above, but the reference's probe runs come from (and are memoized
// in) `cache` — the path ValidateBinary uses when
// ProbeOptions::reuse_reference is set.  Verdicts are identical to the
// cache-free overload.
runtime::ValidationRecord ValidateModule(ReferenceCache& cache,
                                         const isa::Module& candidate);

// Validates every candidate of a multi-version binary (unified
// primary + fail-safe numbering) against the virtual reference,
// stamping each KernelVersion::validation.  Versions sharing the
// original's binary are kExempt; distinct modules are validated once
// and the verdict fanned out.  Returns the number of candidates whose
// verdict is failing.
std::size_t ValidateBinary(const isa::Module& reference,
                           runtime::MultiVersionBinary* binary,
                           const ProbeOptions& options = {});

}  // namespace orion::validate
