#include "validate/validate.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/strings.h"
#include "isa/verifier.h"
#include "sim/interpreter.h"
#include "telemetry/telemetry.h"

namespace orion::validate {

namespace {

using runtime::ValidationRecord;
using runtime::ValidationVerdict;

// Hard caps applied before interpreting an untrusted candidate: the
// interpreter sizes register files, slot arrays and shared memory from
// the module's own headers, so an insane header must fail the verdict
// instead of attempting a huge allocation or a hopeless run.
constexpr std::uint32_t kMaxBlockDim = 1024;
constexpr std::uint32_t kMaxGridDim = 1u << 20;
constexpr std::uint32_t kMaxRegsPerThread = 4096;
constexpr std::uint32_t kMaxSlotsPerThread = 1u << 16;
constexpr std::uint32_t kMaxVRegs = 1u << 12;
constexpr std::uint32_t kMaxSmemBytes = 1u << 20;

ValidationRecord Fail(ValidationVerdict verdict, std::string detail,
                      std::uint32_t probes_run = 0) {
  ValidationRecord record;
  record.verdict = verdict;
  record.detail = std::move(detail);
  record.probes_run = probes_run;
  return record;
}

ValidationRecord ValidateModuleImpl(const isa::Module& reference,
                                    const isa::Module& candidate,
                                    const ProbeOptions& caller_options,
                                    ReferenceCache* cache) {
  // Size the probe image to the reference's address footprint before
  // anything else — a window smaller than the kernel's stores would
  // leave the memory comparison with nothing to compare.  A cache did
  // that growth once in its constructor; the cache-free path grows a
  // local copy.
  ProbeOptions grown;
  if (cache == nullptr) {
    grown = caller_options;
    grown.gmem_words = EffectiveProbeWords(caller_options, reference);
  }
  const ProbeOptions& options = cache != nullptr ? cache->options() : grown;
  // Occupancy realization never changes the launch geometry: a
  // candidate that disagrees with its reference is already wrong.
  if (candidate.launch.block_dim != reference.launch.block_dim ||
      candidate.launch.grid_dim != reference.launch.grid_dim ||
      candidate.launch.param_words != reference.launch.param_words) {
    return Fail(ValidationVerdict::kVerifyFault,
                "launch geometry differs from reference");
  }
  if (candidate.launch.block_dim == 0 ||
      candidate.launch.block_dim > kMaxBlockDim ||
      candidate.launch.grid_dim == 0 ||
      candidate.launch.grid_dim > kMaxGridDim) {
    return Fail(ValidationVerdict::kVerifyFault,
                StrFormat("implausible launch geometry %ux%u",
                          candidate.launch.block_dim,
                          candidate.launch.grid_dim));
  }
  if (candidate.usage.regs_per_thread > kMaxRegsPerThread ||
      candidate.usage.local_slots_per_thread > kMaxSlotsPerThread ||
      candidate.usage.spriv_slots_per_thread > kMaxSlotsPerThread ||
      candidate.user_smem_bytes > kMaxSmemBytes) {
    return Fail(ValidationVerdict::kVerifyFault,
                "implausible resource usage in module header");
  }
  for (const isa::Function& func : candidate.functions) {
    if (!func.allocated && isa::MaxVRegId(func) > kMaxVRegs) {
      return Fail(ValidationVerdict::kVerifyFault,
                  StrFormat("function '%s' uses an implausible vreg id",
                            func.name.c_str()));
    }
  }

  // Structural verification against the candidate's *own* declared
  // usage: every operand and slot access must fit what the interpreter
  // will allocate.  This also rejects recursion, so the co-simulation's
  // call depth is bounded.
  isa::VerifyOptions verify;
  verify.reg_budget = candidate.usage.regs_per_thread;
  verify.local_slot_budget = candidate.usage.local_slots_per_thread;
  verify.spriv_slot_budget = candidate.usage.spriv_slots_per_thread;
  const std::vector<std::string> failures = isa::VerifyModule(candidate, verify);
  if (!failures.empty()) {
    return Fail(ValidationVerdict::kVerifyFault, failures.front());
  }

  sim::InterpOptions interp;
  interp.max_steps_per_thread = options.max_steps_per_thread;
  const std::uint32_t blocks =
      cache != nullptr
          ? cache->blocks()
          : (options.max_blocks == 0
                 ? reference.launch.grid_dim
                 : std::min(reference.launch.grid_dim, options.max_blocks));
  ValidationRecord record;
  for (std::uint32_t probe = 0; probe < options.probes; ++probe) {
    sim::GlobalMemory cand_mem = MakeProbeMemory(options, probe);
    // The reference's final image and exit stats for this probe: from
    // the cache when one is supplied (executed at most once across all
    // candidates), re-co-simulated otherwise.
    sim::GlobalMemory local_ref_mem{0};
    sim::InterpStats local_ref_stats;
    const sim::GlobalMemory* ref_mem = nullptr;
    const sim::InterpStats* ref_stats = nullptr;
    if (cache != nullptr) {
      const ReferenceCache::ProbeRun& run = cache->Run(probe);
      if (run.faulted) {
        // The reference itself cannot run under probe conditions; no
        // conclusion about the candidate is possible, and reporting a
        // failure here would be a false positive.
        record.verdict = ValidationVerdict::kNotValidated;
        record.detail = std::string("reference fault: ") + run.fault_detail;
        record.probes_run = probe;
        return record;
      }
      ref_mem = &run.memory;
      ref_stats = &run.stats;
    } else {
      local_ref_mem = cand_mem;
      try {
        sim::Interpret(reference, &local_ref_mem, options.params, 0, blocks,
                       interp, &local_ref_stats);
      } catch (const OrionError& e) {
        // See the cached branch above: a reference fault is never the
        // candidate's failure.
        record.verdict = ValidationVerdict::kNotValidated;
        record.detail = std::string("reference fault: ") + e.what();
        record.probes_run = probe;
        return record;
      }
      ref_mem = &local_ref_mem;
      ref_stats = &local_ref_stats;
    }
    sim::InterpStats cand_stats;
    try {
      sim::Interpret(candidate, &cand_mem, options.params, 0, blocks, interp,
                     &cand_stats);
    } catch (const OrionError& e) {
      return Fail(ValidationVerdict::kExecutionFault,
                  StrFormat("probe %u: %s", probe, e.what()), probe);
    }
    const std::vector<std::uint32_t>& want = ref_mem->words();
    const std::vector<std::uint32_t>& got = cand_mem.words();
    for (std::size_t w = 0; w < want.size(); ++w) {
      if (want[w] != got[w]) {
        return Fail(ValidationVerdict::kMemoryMismatch,
                    StrFormat("probe %u: word %zu is 0x%08x, reference 0x%08x",
                              probe, w, got[w], want[w]),
                    probe);
      }
    }
    if (cand_stats.threads_retired != ref_stats->threads_retired ||
        cand_stats.barrier_rounds != ref_stats->barrier_rounds) {
      return Fail(
          ValidationVerdict::kExitMismatch,
          StrFormat(
              "probe %u: exit state %llu retired / %llu barrier rounds, "
              "reference %llu / %llu",
              probe,
              static_cast<unsigned long long>(cand_stats.threads_retired),
              static_cast<unsigned long long>(cand_stats.barrier_rounds),
              static_cast<unsigned long long>(ref_stats->threads_retired),
              static_cast<unsigned long long>(ref_stats->barrier_rounds)),
          probe);
    }
    record.probes_run = probe + 1;
  }
  record.verdict = ValidationVerdict::kPass;
  return record;
}

}  // namespace

sim::GlobalMemory MakeProbeMemory(const ProbeOptions& options,
                                  std::uint32_t probe) {
  // Probe i draws from its own stream.  Two interleaved populations:
  //
  //   * small positive integers — benign when a kernel folds a loaded
  //     word into an address (out-of-range accesses are dropped by the
  //     interpreter, but staying mostly in range exercises real reuse);
  //   * normal floats in [1.0, 2.0) with a random mantissa — entropy
  //     that *survives* the float pipeline.  A uniform word in
  //     [1, 1000] is a denormal as a float, and every FMUL/FADD
  //     collapses denormals to 0.0 or swallows them against 1.0, so a
  //     probe made only of small integers is blind to miscompiles on
  //     float-carrying paths (e.g. a swapped spill slot feeding an FMA
  //     chain).
  Rng rng(options.seed ^
          (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(probe) + 1)));
  sim::GlobalMemory memory(options.gmem_words);
  for (std::uint32_t& word : memory.words()) {
    if (rng.NextBounded(3) == 0) {
      word = 0x3F800000u |
             static_cast<std::uint32_t>(rng.NextBounded(1u << 23));
    } else {
      word = static_cast<std::uint32_t>(rng.NextBounded(1000) + 1);
    }
  }
  return memory;
}

std::uint32_t EffectiveProbeWords(const ProbeOptions& options,
                                  const isa::Module& reference) {
  // Largest static offset of any global load/store (srcs[1] of kLd/kSt
  // is the immediate byte offset).  The dynamic base (address register)
  // is launch-geometry bounded in practice; one extra 64K-word band of
  // slack covers it for the probe grids the validator runs.
  std::uint64_t max_offset_bytes = 0;
  for (const isa::Function& func : reference.functions) {
    for (const isa::Instruction& instr : func.instrs) {
      if ((instr.op != isa::Opcode::kLd && instr.op != isa::Opcode::kSt) ||
          instr.space != isa::MemSpace::kGlobal || instr.srcs.size() < 2 ||
          instr.srcs[1].kind != isa::OperandKind::kImm) {
        continue;
      }
      const std::int64_t offset = instr.srcs[1].imm;
      max_offset_bytes = std::max(
          max_offset_bytes,
          static_cast<std::uint64_t>(offset < 0 ? -offset : offset));
    }
  }
  constexpr std::uint64_t kSlackWords = 1u << 16;
  constexpr std::uint64_t kCapWords = 1u << 26;  // 256 MiB of words
  const std::uint64_t footprint = max_offset_bytes / 4 + kSlackWords;
  return static_cast<std::uint32_t>(std::min(
      kCapWords,
      std::max<std::uint64_t>(options.gmem_words, footprint)));
}

std::uint64_t ChecksumMemory(const sim::GlobalMemory& memory) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (const std::uint32_t word : memory.words()) {
    for (int b = 0; b < 4; ++b) {
      hash ^= (word >> (8 * b)) & 0xFFu;
      hash *= 1099511628211ull;  // FNV-1a 64 prime
    }
  }
  return hash;
}

ReferenceCache::ReferenceCache(const isa::Module& reference,
                               const ProbeOptions& options)
    : reference_(&reference), options_(options) {
  options_.gmem_words = EffectiveProbeWords(options, reference);
  blocks_ = options_.max_blocks == 0
                ? reference.launch.grid_dim
                : std::min(reference.launch.grid_dim, options_.max_blocks);
  runs_.resize(options_.probes);
}

ReferenceCache::~ReferenceCache() = default;
ReferenceCache::ReferenceCache(ReferenceCache&&) noexcept = default;
ReferenceCache& ReferenceCache::operator=(ReferenceCache&&) noexcept = default;

std::uint32_t ReferenceCache::runs_executed() const {
  std::uint32_t executed = 0;
  for (const std::unique_ptr<ProbeRun>& run : runs_) {
    executed += run != nullptr;
  }
  return executed;
}

const ReferenceCache::ProbeRun& ReferenceCache::Run(std::uint32_t probe) {
  std::unique_ptr<ProbeRun>& slot = runs_.at(probe);
  if (slot == nullptr) {
    auto run = std::make_unique<ProbeRun>();
    run->memory = MakeProbeMemory(options_, probe);
    sim::InterpOptions interp;
    interp.max_steps_per_thread = options_.max_steps_per_thread;
    try {
      sim::Interpret(*reference_, &run->memory, options_.params, 0, blocks_,
                     interp, &run->stats);
    } catch (const OrionError& e) {
      run->faulted = true;
      run->fault_detail = e.what();
      run->memory = sim::GlobalMemory(0);  // a faulted image is never read
    }
    slot = std::move(run);
  }
  return *slot;
}

runtime::ValidationRecord ValidateModule(const isa::Module& reference,
                                         const isa::Module& candidate,
                                         const ProbeOptions& options) {
  telemetry::ScopedSpan span("validate", "validate.module");
  span.AddArg("kernel", candidate.name);
  ValidationRecord record =
      ValidateModuleImpl(reference, candidate, options, nullptr);
  span.AddArg("verdict", runtime::ValidationVerdictName(record.verdict));
  span.AddArg("probes", static_cast<std::uint64_t>(record.probes_run));
  return record;
}

runtime::ValidationRecord ValidateModule(ReferenceCache& cache,
                                         const isa::Module& candidate) {
  telemetry::ScopedSpan span("validate", "validate.module");
  span.AddArg("kernel", candidate.name);
  ValidationRecord record =
      ValidateModuleImpl(cache.reference(), candidate, cache.options(), &cache);
  span.AddArg("verdict", runtime::ValidationVerdictName(record.verdict));
  span.AddArg("probes", static_cast<std::uint64_t>(record.probes_run));
  return record;
}

std::size_t ValidateBinary(const isa::Module& reference,
                           runtime::MultiVersionBinary* binary,
                           const ProbeOptions& options) {
  telemetry::ScopedSpan span("validate", "validate.binary");
  span.AddArg("kernel", binary->kernel_name);
  const std::uint32_t original_module =
      binary->versions.empty() ? 0 : binary->versions.front().module_index;
  // One reference execution per probe, shared across every candidate.
  // Built lazily inside ValidateModule, so a binary with nothing to
  // validate (or only verify-fault candidates) never runs the reference.
  std::optional<ReferenceCache> cache;
  if (options.reuse_reference) {
    cache.emplace(reference, options);
  }
  // Distinct modules are validated once; padded variants share verdicts.
  std::map<std::uint32_t, ValidationRecord> by_module;
  std::size_t failed_candidates = 0;
  for (std::size_t i = 0; i < binary->NumCandidates(); ++i) {
    runtime::KernelVersion& version = binary->Candidate(i);
    if (!binary->versions.empty() && version.module_index == original_module) {
      // Version 0 is the always-safe fallback (and padded variants
      // execute its binary): exempt by design, never quarantined.
      version.validation = ValidationRecord{};
      version.validation.verdict = ValidationVerdict::kExempt;
      continue;
    }
    auto it = by_module.find(version.module_index);
    if (it == by_module.end()) {
      ValidationRecord record =
          cache.has_value()
              ? ValidateModule(*cache, binary->ModuleOf(version))
              : ValidateModule(reference, binary->ModuleOf(version), options);
      ORION_COUNTER_ADD("validate.modules", 1);
      ORION_COUNTER_ADD("validate.probes", record.probes_run);
      if (record.Failed()) {
        ORION_COUNTER_ADD("validate.failures", 1);
      }
      it = by_module.emplace(version.module_index, std::move(record)).first;
    }
    version.validation = it->second;
    if (version.validation.Failed()) {
      ++failed_candidates;
      ORION_LOG(WARN) << "kernel '" << binary->kernel_name << "' candidate "
                      << i << " (" << version.tag << ") failed validation: "
                      << runtime::ValidationVerdictName(
                             version.validation.verdict)
                      << " — " << version.validation.detail;
      if (telemetry::Enabled()) {
        telemetry::Instant(
            "validate", "validate.reject",
            {telemetry::Arg("kernel", binary->kernel_name),
             telemetry::Arg("candidate", static_cast<std::uint64_t>(i)),
             telemetry::Arg("verdict",
                            runtime::ValidationVerdictName(
                                version.validation.verdict)),
             telemetry::Arg("detail", version.validation.detail)});
      }
    }
  }
  if (cache.has_value()) {
    ORION_COUNTER_ADD("validate.reference_runs", cache->runs_executed());
    span.AddArg("reference_runs",
                static_cast<std::uint64_t>(cache->runs_executed()));
  }
  span.AddArg("candidates",
              static_cast<std::uint64_t>(binary->NumCandidates()));
  span.AddArg("failures", static_cast<std::uint64_t>(failed_candidates));
  return failed_candidates;
}

}  // namespace orion::validate
