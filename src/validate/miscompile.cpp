#include "validate/miscompile.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace orion::validate {

namespace {

using isa::Instruction;
using isa::MemSpace;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

struct Site {
  std::size_t func = 0;
  std::size_t instr = 0;
};

bool IsSlotSpace(MemSpace space) {
  return space == MemSpace::kLocal || space == MemSpace::kSharedPriv;
}

// Removes one instruction, keeping label indices pointing at the same
// logical successors.
void EraseInstr(isa::Function* func, std::size_t index) {
  func->instrs.erase(func->instrs.begin() +
                     static_cast<std::ptrdiff_t>(index));
  for (auto& [label, at] : func->labels) {
    if (at > index) {
      --at;
    }
  }
}

// Wrong compressible-stack slot addressing: one slot-addressed access
// targets a neighboring slot, so a spill round-trip reads stale data or
// clobbers another value's home.
bool MutateSlotAddress(isa::Module* module, Rng* rng) {
  std::vector<Site> sites;
  for (std::size_t f = 0; f < module->functions.size(); ++f) {
    const isa::Function& func = module->functions[f];
    if (!func.allocated) {
      continue;
    }
    for (std::size_t i = 0; i < func.instrs.size(); ++i) {
      const Instruction& instr = func.instrs[i];
      if ((instr.op == Opcode::kLd || instr.op == Opcode::kSt) &&
          IsSlotSpace(instr.space)) {
        sites.push_back({f, i});
      }
    }
  }
  if (sites.empty()) {
    return false;
  }
  const Site site = sites[rng->NextBounded(sites.size())];
  Operand& addr = module->functions[site.func].instrs[site.instr].srcs[0];
  addr.imm = addr.imm == 0 ? addr.imm + 1 : addr.imm - 1;
  return true;
}

// Dropped park/restore move around a call: one MOV of the lowered call
// sequence vanishes, so a live value parked into the callee's gap (or
// restored from it, or the returned value itself) is lost.
bool MutateDropPark(isa::Module* module, Rng* rng) {
  std::vector<Site> sites;  // index of the MOV to drop
  for (std::size_t f = 0; f < module->functions.size(); ++f) {
    const isa::Function& func = module->functions[f];
    if (!func.allocated) {
      continue;
    }
    for (std::size_t i = 0; i < func.instrs.size(); ++i) {
      if (func.instrs[i].op != Opcode::kCal) {
        continue;
      }
      // Restore / return-value moves follow the bare call; park and
      // argument moves precede it.  Either drop breaks the contract.
      if (i + 1 < func.instrs.size() &&
          func.instrs[i + 1].op == Opcode::kMov) {
        sites.push_back({f, i + 1});
      } else if (i > 0 && func.instrs[i - 1].op == Opcode::kMov) {
        sites.push_back({f, i - 1});
      }
    }
  }
  if (sites.empty()) {
    return false;
  }
  const Site site = sites[rng->NextBounded(sites.size())];
  EraseInstr(&module->functions[site.func], site.instr);
  return true;
}

// Misaligned wide register pair: one 64/96/128-bit operand shifts off
// its alignment boundary, reading or writing a skewed register window.
bool MutateWidePair(isa::Module* module, Rng* rng) {
  struct OperandSite {
    std::size_t func = 0;
    std::size_t instr = 0;
    bool dst = false;
    std::size_t slot = 0;
  };
  std::vector<OperandSite> sites;
  for (std::size_t f = 0; f < module->functions.size(); ++f) {
    const isa::Function& func = module->functions[f];
    if (!func.allocated) {
      continue;
    }
    for (std::size_t i = 0; i < func.instrs.size(); ++i) {
      const Instruction& instr = func.instrs[i];
      for (std::size_t d = 0; d < instr.dsts.size(); ++d) {
        if (instr.dsts[d].kind == OperandKind::kPReg &&
            instr.dsts[d].width >= 2) {
          sites.push_back({f, i, true, d});
        }
      }
      for (std::size_t s = 0; s < instr.srcs.size(); ++s) {
        if (instr.srcs[s].kind == OperandKind::kPReg &&
            instr.srcs[s].width >= 2) {
          sites.push_back({f, i, false, s});
        }
      }
    }
  }
  if (sites.empty()) {
    return false;
  }
  const OperandSite site = sites[rng->NextBounded(sites.size())];
  Instruction& instr = module->functions[site.func].instrs[site.instr];
  Operand& op = site.dst ? instr.dsts[site.slot] : instr.srcs[site.slot];
  op.id += 1;  // breaks the even / multiple-of-four alignment rule
  return true;
}

// Swapped spill slots: two loads exchange their slot addresses, so each
// reads the value the other spilled.
bool MutateSwapSpill(isa::Module* module, Rng* rng) {
  for (const MemSpace space : {MemSpace::kLocal, MemSpace::kSharedPriv}) {
    std::vector<Site> sites;
    for (std::size_t f = 0; f < module->functions.size(); ++f) {
      const isa::Function& func = module->functions[f];
      if (!func.allocated) {
        continue;
      }
      for (std::size_t i = 0; i < func.instrs.size(); ++i) {
        const Instruction& instr = func.instrs[i];
        if (instr.op == Opcode::kLd && instr.space == space) {
          sites.push_back({f, i});
        }
      }
    }
    if (sites.size() < 2) {
      continue;
    }
    auto slot_of = [&](const Site& s) -> Operand& {
      return module->functions[s.func].instrs[s.instr].srcs[0];
    };
    auto width_of = [&](const Site& s) -> std::uint8_t {
      const Instruction& instr = module->functions[s.func].instrs[s.instr];
      return instr.dsts.empty() ? std::uint8_t{1} : instr.dsts[0].width;
    };
    const std::size_t start = rng->NextBounded(sites.size());
    for (std::size_t off = 0; off < sites.size(); ++off) {
      const Site& a = sites[(start + off) % sites.size()];
      // Prefer an equal-width partner: the swap then stays within the
      // slot budget and only the differential comparison can catch it.
      const Site* same_width = nullptr;
      const Site* any = nullptr;
      for (const Site& b : sites) {
        if (slot_of(b).imm == slot_of(a).imm) {
          continue;
        }
        if (same_width == nullptr && width_of(b) == width_of(a)) {
          same_width = &b;
        }
        if (any == nullptr) {
          any = &b;
        }
      }
      const Site* partner = same_width != nullptr ? same_width : any;
      if (partner == nullptr) {
        continue;
      }
      std::swap(slot_of(a).imm, slot_of(*partner).imm);
      return true;
    }
  }
  return false;
}

}  // namespace

bool ApplyMiscompile(isa::Module* module, MiscompileKind kind,
                     std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case MiscompileKind::kNone:
      return false;
    case MiscompileKind::kSlotAddress:
      return MutateSlotAddress(module, &rng);
    case MiscompileKind::kDropPark:
      return MutateDropPark(module, &rng);
    case MiscompileKind::kWidePair:
      return MutateWidePair(module, &rng);
    case MiscompileKind::kSwapSpill:
      return MutateSwapSpill(module, &rng);
  }
  return false;
}

}  // namespace orion::validate
