// Orion — the GPU occupancy tuning framework (public API).
//
// Mirrors the paper's pipeline:
//
//   binary in                            (EncodeModule'd virtual cubin)
//     └─ front end: decode to IR         (DecodeModule + Cfg/CallGraph)
//     └─ middle end: occupancy realization at candidate levels
//        (liveness, coloring, spilling, shared re-homing,
//         compressible stack — src/alloc)
//     └─ compile-time tuning (Fig. 8)    (CompileMultiVersion)
//   multi-version binary out
//     └─ runtime adaptation (Fig. 9)     (runtime::TunedLauncher)
//
// The headline entry points:
//   * CompileAtLevel      — realize one occupancy level ("realizing
//                           occupancy", Section 3.2)
//   * EnumerateAllVersions— a version at *every* occupancy level, used
//                           for exhaustive Orion-Min/Orion-Max sweeps
//   * CompileMultiVersion — the Fig. 8 candidate selection (≤5 versions)
//   * TuneBinary          — decode→tune→encode convenience over bytes
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/allocator.h"
#include "arch/gpu_spec.h"
#include "arch/occupancy.h"
#include "common/status.h"
#include "runtime/multiversion.h"
#include "validate/validate.h"

namespace orion::core {

struct TuneOptions {
  arch::CacheConfig cache_config = arch::CacheConfig::kSmallCache;
  alloc::AllocOptions alloc;
  std::uint32_t max_versions = 5;  // compile-time candidate cap (Sec 3.3)
  // Application hint: false when the kernel has no loop and cannot be
  // split (Fig. 8 `canTune`); the static model then picks the version.
  bool can_tune = true;
  // Differential translation validation (src/validate): when true,
  // every realized candidate is co-simulated against the virtual
  // original on probe inputs; failing candidates keep their verdict,
  // are pre-quarantined by the launch guard, and the Fig. 9 walk never
  // enters them.  Off by default — the pipeline is bit-identical to the
  // ungated pipeline in that state.
  bool validate = false;
  validate::ProbeOptions probe;
  // Worker threads for fanning CompileAtLevel out across candidate
  // levels in EnumerateAllVersions (0 = hardware concurrency).  Results
  // are committed in level order, so every thread count produces a
  // bit-identical binary (tests/determinism_test.cpp).  An installed
  // FaultInjector forces the serial path: its compile-fault and
  // miscompile streams are ordered per level.
  unsigned compile_threads = 1;
  // Compute the level-independent analysis (alloc::AnalyzedModule) once
  // per kernel and share it across all candidate levels.  Off repeats
  // the full analysis per level — the pre-cache pipeline, kept as the
  // bench/micro_compiler baseline; realized bytes are identical either
  // way (tests/alloc_test.cpp).
  bool reuse_analysis = true;
};

// Realizes one occupancy level: allocates under the level's register and
// shared-memory budgets, then pads launch-time shared memory so the
// driver schedules exactly level.blocks_per_sm blocks.  A failing level
// is never fatal: the Result carries kInfeasible when the level simply
// cannot be realized for this kernel (budget below the spill floor —
// the expected, quiet case) and kCompileFault when compilation failed
// for an unexpected or injected reason (recorded by the multi-version
// drivers as a CompileSkip).  Result<T> exposes the optional-style
// has_value()/operator-> API, so `if (!version.has_value()) continue;`
// call sites keep working.
Result<runtime::KernelVersion> CompileAtLevel(
    const isa::Module& virt, const arch::GpuSpec& spec,
    const arch::OccupancyLevel& level, const TuneOptions& options,
    std::vector<isa::Module>* module_pool);

// Analysis-once variant: realizes the level from a pre-computed
// level-independent analysis (alloc::AnalyzeModule of the same virtual
// module with options.alloc).  Byte-identical to the from-scratch
// overload; the multi-version drivers analyze once and call this per
// level — concurrently from worker threads when compile_threads > 1
// (the analysis is immutable, each call gets a private module pool).
Result<runtime::KernelVersion> CompileAtLevel(
    const alloc::AnalyzedModule& analysis, const arch::GpuSpec& spec,
    const arch::OccupancyLevel& level, const TuneOptions& options,
    std::vector<isa::Module>* module_pool);

// The "original" version (Section 3.3): all live values in the minimal
// number of registers, or the per-thread hardware maximum.
runtime::KernelVersion CompileOriginal(const isa::Module& virt,
                                       const arch::GpuSpec& spec,
                                       const TuneOptions& options,
                                       std::vector<isa::Module>* module_pool);
runtime::KernelVersion CompileOriginal(const alloc::AnalyzedModule& analysis,
                                       const arch::GpuSpec& spec,
                                       const TuneOptions& options,
                                       std::vector<isa::Module>* module_pool);

// One version per realizable occupancy level, highest occupancy first —
// the exhaustive search the evaluation compares against.
runtime::MultiVersionBinary EnumerateAllVersions(const isa::Module& virt,
                                                 const arch::GpuSpec& spec,
                                                 const TuneOptions& options);

// Figure 8: the compile-time candidate selection.  Produces the ordered
// walk list for the runtime tuner (original first), the tuning
// direction from the max-live metric, and — when !options.can_tune —
// the static model's choice.
runtime::MultiVersionBinary CompileMultiVersion(const isa::Module& virt,
                                                const arch::GpuSpec& spec,
                                                const TuneOptions& options);

// Byte-level convenience: decode a virtual GPU binary, tune, and encode
// every version back to binary images (the asfermi-style flow).
struct TunedBinary {
  runtime::MultiVersionBinary binary;
  std::vector<std::vector<std::uint8_t>> images;  // one per module
};
TunedBinary TuneBinary(const std::vector<std::uint8_t>& cubin,
                       const arch::GpuSpec& spec, const TuneOptions& options);

// The max-live threshold that separates the two tuning directions on a
// given architecture: the per-thread register count at which full
// occupancy is still reachable (32 on Kepler, Section 3.3).
std::uint32_t MaxLiveThreshold(const arch::GpuSpec& spec);

}  // namespace orion::core
