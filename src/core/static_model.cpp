#include "core/static_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/loops.h"
#include "sim/parallel.h"

namespace orion::core {

StaticProfile ProfileModule(const isa::Module& module,
                            const arch::GpuSpec& spec) {
  StaticProfile profile;
  for (const isa::Function& func : module.functions) {
    const ir::Cfg cfg = ir::Cfg::Build(func);
    const ir::Dominance dom(cfg);
    const ir::LoopInfo loops(cfg, dom);
    for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
      const double weight = loops.Weight(bi);
      const ir::BasicBlock& block = cfg.block(bi);
      for (std::uint32_t i = block.begin; i < block.end; ++i) {
        const isa::Instruction& instr = func.instrs[i];
        profile.weighted_instrs += weight;
        if (isa::IsMemory(instr.op)) {
          switch (instr.space) {
            case isa::MemSpace::kGlobal:
            case isa::MemSpace::kLocal:
              profile.weighted_mem_ops += weight;
              break;
            case isa::MemSpace::kShared:
            case isa::MemSpace::kSharedPriv:
              profile.weighted_smem_ops += weight;
              break;
            case isa::MemSpace::kParam:
              break;
          }
        }
      }
    }
  }
  // Latency estimate: a blend of L2 and DRAM (the static model cannot
  // know hit rates; the paper's model is similarly coarse).
  profile.avg_mem_latency =
      0.5 * (spec.timing.l2_latency + spec.timing.dram_latency);
  return profile;
}

std::uint32_t WarpsNeeded(const StaticProfile& profile) {
  if (profile.weighted_mem_ops <= 0.0) {
    return 1;  // compute-only kernels need no latency hiding
  }
  const double instrs_between_mem =
      std::max(1.0, profile.weighted_instrs / profile.weighted_mem_ops);
  const double warps =
      std::ceil(profile.avg_mem_latency / instrs_between_mem);
  return static_cast<std::uint32_t>(std::max(1.0, warps));
}

std::uint32_t RefineStaticChoiceBySimulation(
    const runtime::MultiVersionBinary& binary, const arch::GpuSpec& spec,
    arch::CacheConfig cache_config, const sim::GlobalMemory& base,
    const std::vector<std::uint32_t>& params, unsigned threads) {
  ORION_CHECK(!binary.versions.empty());
  std::vector<sim::SweepCandidate> candidates(binary.versions.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const runtime::KernelVersion& version = binary.versions[i];
    candidates[i].module = &binary.ModuleOf(version);
    candidates[i].iteration_params = {params};
    candidates[i].dynamic_smem_bytes = version.smem_padding_bytes;
  }
  const sim::ParallelSweep sweep(spec, cache_config, threads);
  const std::vector<sim::SweepOutcome> outcomes = sweep.Run(candidates, base);
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < outcomes.size(); ++i) {
    if (outcomes[i].launches.front().ms < outcomes[best].launches.front().ms) {
      best = i;
    }
  }
  return best;
}

}  // namespace orion::core
