#include "core/static_model.h"

#include <algorithm>
#include <cmath>

#include "ir/cfg.h"
#include "ir/dominance.h"
#include "ir/loops.h"

namespace orion::core {

StaticProfile ProfileModule(const isa::Module& module,
                            const arch::GpuSpec& spec) {
  StaticProfile profile;
  for (const isa::Function& func : module.functions) {
    const ir::Cfg cfg = ir::Cfg::Build(func);
    const ir::Dominance dom(cfg);
    const ir::LoopInfo loops(cfg, dom);
    for (std::uint32_t bi = 0; bi < cfg.NumBlocks(); ++bi) {
      const double weight = loops.Weight(bi);
      const ir::BasicBlock& block = cfg.block(bi);
      for (std::uint32_t i = block.begin; i < block.end; ++i) {
        const isa::Instruction& instr = func.instrs[i];
        profile.weighted_instrs += weight;
        if (isa::IsMemory(instr.op)) {
          switch (instr.space) {
            case isa::MemSpace::kGlobal:
            case isa::MemSpace::kLocal:
              profile.weighted_mem_ops += weight;
              break;
            case isa::MemSpace::kShared:
            case isa::MemSpace::kSharedPriv:
              profile.weighted_smem_ops += weight;
              break;
            case isa::MemSpace::kParam:
              break;
          }
        }
      }
    }
  }
  // Latency estimate: a blend of L2 and DRAM (the static model cannot
  // know hit rates; the paper's model is similarly coarse).
  profile.avg_mem_latency =
      0.5 * (spec.timing.l2_latency + spec.timing.dram_latency);
  return profile;
}

std::uint32_t WarpsNeeded(const StaticProfile& profile) {
  if (profile.weighted_mem_ops <= 0.0) {
    return 1;  // compute-only kernels need no latency hiding
  }
  const double instrs_between_mem =
      std::max(1.0, profile.weighted_instrs / profile.weighted_mem_ops);
  const double warps =
      std::ceil(profile.avg_mem_latency / instrs_between_mem);
  return static_cast<std::uint32_t>(std::max(1.0, warps));
}

}  // namespace orion::core
