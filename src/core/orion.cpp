#include "core/orion.h"

#include <algorithm>
#include <optional>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "core/static_model.h"
#include "isa/binary.h"
#include "telemetry/telemetry.h"
#include "validate/miscompile.h"
#include "validate/validate.h"

namespace orion::core {

namespace {

std::uint32_t AlignDown(std::uint32_t v, std::uint32_t unit) {
  return v / unit * unit;
}

// Shared-memory footprint of an allocated module's blocks, before any
// launch-time padding.
std::uint32_t BaseSmemPerBlock(const isa::Module& module) {
  return module.usage.user_smem_bytes_per_block +
         module.usage.SmemBytesPerThread() * module.launch.block_dim;
}

arch::OccupancyResult OccupancyOf(const isa::Module& module,
                                  const arch::GpuSpec& spec,
                                  arch::CacheConfig config,
                                  std::uint32_t padding) {
  arch::KernelResources res;
  res.regs_per_thread = module.usage.regs_per_thread;
  res.smem_bytes_per_block = BaseSmemPerBlock(module) + padding;
  res.block_dim = module.launch.block_dim;
  return ComputeOccupancy(spec, config, res);
}

// Launch-time padding that brings the module down to exactly
// `target_blocks` resident blocks (0 if already there).  Returns nullopt
// when no padding achieves the target (alignment granularity).
std::optional<std::uint32_t> PaddingForBlocks(const isa::Module& module,
                                              const arch::GpuSpec& spec,
                                              arch::CacheConfig config,
                                              std::uint32_t target_blocks) {
  const arch::OccupancyResult base = OccupancyOf(module, spec, config, 0);
  if (base.active_blocks_per_sm <= target_blocks) {
    return base.active_blocks_per_sm == target_blocks
               ? std::optional<std::uint32_t>(0)
               : std::nullopt;
  }
  const std::uint32_t smem = spec.SmemBytes(config);
  const std::uint32_t unit = spec.smem_alloc_unit;
  // Largest aligned per-block footprint admitting `target_blocks`.
  std::uint32_t per_block = AlignDown(smem / target_blocks, unit);
  const std::uint32_t base_bytes = BaseSmemPerBlock(module);
  while (per_block > base_bytes) {
    const std::uint32_t padding = per_block - base_bytes;
    const arch::OccupancyResult occ = OccupancyOf(module, spec, config, padding);
    if (occ.active_blocks_per_sm == target_blocks) {
      return padding;
    }
    if (occ.active_blocks_per_sm < target_blocks) {
      return std::nullopt;  // another limit dropped us below the target
    }
    per_block -= unit;
  }
  return std::nullopt;
}

// Shared-memory spill budget (words per thread) a level leaves after the
// kernel's own static shared memory.
std::uint32_t SprivBudgetWords(const isa::Module& virt,
                               const arch::OccupancyLevel& level) {
  if (level.smem_budget_per_block <= virt.user_smem_bytes) {
    return 0;
  }
  const std::uint32_t spare = level.smem_budget_per_block - virt.user_smem_bytes;
  return spare / 4 / virt.launch.block_dim;
}

// Records a level the compiler skipped because compilation *faulted*.
// Expected infeasibility stays quiet: most kernels cannot realize most
// levels and that is not a health event.
void RecordSkip(runtime::MultiVersionBinary* binary,
                const arch::OccupancyLevel& level, const Status& status) {
  if (status.code() == StatusCode::kInfeasible) {
    return;
  }
  binary->compile_skips.push_back(
      {StrFormat("blocks=%u", level.blocks_per_sm), status,
       runtime::SkipReasonFromStatus(status.code())});
  ORION_LOG(WARN) << "kernel '" << binary->kernel_name
                  << "' skipped level blocks=" << level.blocks_per_sm << ": "
                  << status.ToString();
  ORION_COUNTER_ADD("compile.skips", 1);
  if (telemetry::Enabled()) {
    telemetry::Instant("compiler", "compile.skip",
                       {telemetry::Arg("kernel", binary->kernel_name),
                        telemetry::Arg("blocks", level.blocks_per_sm),
                        telemetry::Arg("status", status.ToString())});
  }
}

// Runs the differential validation gate over a freshly compiled binary:
// stamps per-candidate verdicts and repoints the static choice away
// from any rejected version (version 0 is the always-safe fallback).
void RunValidationGate(const isa::Module& virt,
                       runtime::MultiVersionBinary* binary,
                       const validate::ProbeOptions& probe) {
  const std::size_t failures = validate::ValidateBinary(virt, binary, probe);
  if (failures == 0) {
    return;
  }
  ORION_LOG(WARN) << "kernel '" << binary->kernel_name << "': " << failures
                  << " candidate(s) rejected by translation validation";
  if (binary->static_choice < binary->versions.size() &&
      binary->versions[binary->static_choice].validation.Failed()) {
    binary->static_choice = 0;
  }
}

}  // namespace

std::uint32_t MaxLiveThreshold(const arch::GpuSpec& spec) {
  return spec.registers_per_sm / spec.max_threads_per_sm;
}

Result<runtime::KernelVersion> CompileAtLevel(
    const isa::Module& virt, const arch::GpuSpec& spec,
    const arch::OccupancyLevel& level, const TuneOptions& options,
    std::vector<isa::Module>* module_pool) {
  // From-scratch path (one-shot callers, and the multi-version drivers
  // when TuneOptions::reuse_analysis is off): the level-independent
  // analysis is rebuilt for this level alone.
  try {
    return CompileAtLevel(alloc::AnalyzeModule(virt, options.alloc), spec,
                          level, options, module_pool);
  } catch (const CompileError& e) {
    return Status::Error(StatusCode::kInfeasible, e.what())
        .WithContext(StrFormat("allocate at blocks=%u", level.blocks_per_sm));
  } catch (const OrionError& e) {
    return Status::Error(StatusCode::kCompileFault, e.what())
        .WithContext(StrFormat("allocate at blocks=%u", level.blocks_per_sm));
  }
}

Result<runtime::KernelVersion> CompileAtLevel(
    const alloc::AnalyzedModule& analysis, const arch::GpuSpec& spec,
    const arch::OccupancyLevel& level, const TuneOptions& options,
    std::vector<isa::Module>* module_pool) {
  const isa::Module& virt = analysis.input();
  telemetry::ScopedSpan span("compiler", "compile.level");
  span.AddArg("kernel", virt.name);
  span.AddArg("blocks", level.blocks_per_sm);
  // Fault-injection hook: an installed injector can fail this level's
  // compilation outright; the drivers must skip and record it.
  if (FaultInjector* injector = FaultInjector::Current()) {
    if (injector->ShouldFailCompile()) {
      return Status::Error(
          StatusCode::kCompileFault,
          StrFormat("injected compile fault at level blocks=%u",
                    level.blocks_per_sm));
    }
  }
  alloc::AllocBudget budget;
  budget.reg_words = level.reg_budget_per_thread;
  budget.spriv_slot_words = options.alloc.rehome_spills
                                ? SprivBudgetWords(virt, level)
                                : 0;
  runtime::KernelVersion version;
  isa::Module allocated;
  try {
    allocated = alloc::RealizeModule(analysis, budget, &version.alloc_stats);
  } catch (const CompileError& e) {
    // Level infeasible for this kernel (budget below the spill floor) —
    // the expected, quiet outcome.
    return Status::Error(StatusCode::kInfeasible, e.what())
        .WithContext(StrFormat("allocate at blocks=%u", level.blocks_per_sm));
  } catch (const OrionError& e) {
    // Anything else escaping the allocator is a per-candidate fault:
    // skip the level, never kill the whole compile.
    return Status::Error(StatusCode::kCompileFault, e.what())
        .WithContext(StrFormat("allocate at blocks=%u", level.blocks_per_sm));
  }

  // Miscompile hook: an installed injector can corrupt the allocator's
  // freshly realized output — the bug classes the differential
  // validation gate exists to catch.
  if (FaultInjector* injector = FaultInjector::Current()) {
    std::uint64_t mutation_seed = 0;
    const MiscompileKind kind = injector->NextMiscompile(&mutation_seed);
    if (kind != MiscompileKind::kNone &&
        validate::ApplyMiscompile(&allocated, kind, mutation_seed)) {
      injector->NoteMiscompileApplied();
      ORION_LOG(WARN) << "injected miscompile (" << MiscompileKindName(kind)
                      << ") into kernel '" << virt.name
                      << "' at level blocks=" << level.blocks_per_sm;
      ORION_COUNTER_ADD("compile.miscompiles_injected", 1);
    }
  }

  const std::optional<std::uint32_t> padding = PaddingForBlocks(
      allocated, spec, options.cache_config, level.blocks_per_sm);
  version.smem_padding_bytes = padding.value_or(0);
  version.occupancy = OccupancyOf(allocated, spec, options.cache_config,
                                  version.smem_padding_bytes);
  if (version.occupancy.active_blocks_per_sm == 0) {
    return Status::Error(
        StatusCode::kInfeasible,
        StrFormat("level blocks=%u schedules zero blocks after padding",
                  level.blocks_per_sm));
  }
  version.tag = StrFormat("occ=%.3f", version.occupancy.occupancy);
  module_pool->push_back(std::move(allocated));
  version.module_index = static_cast<std::uint32_t>(module_pool->size() - 1);
  return version;
}

runtime::KernelVersion CompileOriginal(const isa::Module& virt,
                                       const arch::GpuSpec& spec,
                                       const TuneOptions& options,
                                       std::vector<isa::Module>* module_pool) {
  return CompileOriginal(alloc::AnalyzeModule(virt, options.alloc), spec,
                         options, module_pool);
}

runtime::KernelVersion CompileOriginal(const alloc::AnalyzedModule& analysis,
                                       const arch::GpuSpec& spec,
                                       const TuneOptions& options,
                                       std::vector<isa::Module>* module_pool) {
  const isa::Module& virt = analysis.input();
  telemetry::ScopedSpan span("compiler", "compile.original");
  span.AddArg("kernel", virt.name);
  alloc::AllocBudget budget;
  budget.reg_words = spec.max_regs_per_thread;
  budget.spriv_slot_words = 0;  // the original version uses registers only
  runtime::KernelVersion version;
  isa::Module allocated =
      alloc::RealizeModule(analysis, budget, &version.alloc_stats);
  version.smem_padding_bytes = 0;
  version.occupancy = OccupancyOf(allocated, spec, options.cache_config, 0);
  if (version.occupancy.active_blocks_per_sm == 0) {
    throw CompileError(StrFormat(
        "kernel '%s' cannot run on %s even at the original occupancy",
        virt.name.c_str(), spec.name.c_str()));
  }
  version.tag = "original";
  module_pool->push_back(std::move(allocated));
  version.module_index = static_cast<std::uint32_t>(module_pool->size() - 1);
  return version;
}

runtime::MultiVersionBinary EnumerateAllVersions(const isa::Module& virt,
                                                 const arch::GpuSpec& spec,
                                                 const TuneOptions& options) {
  telemetry::ScopedSpan span("compiler", "compile.enumerate");
  span.AddArg("kernel", virt.name);
  runtime::MultiVersionBinary binary;
  binary.kernel_name = virt.name;
  binary.gpu_name = spec.name;
  binary.direction = runtime::TuneDirection::kIncreasing;
  // Analysis once, realization per level (and the cached kernel
  // max-live doubles as the binary's).
  std::optional<alloc::AnalyzedModule> analysis;
  if (options.reuse_analysis) {
    analysis.emplace(alloc::AnalyzeModule(virt, options.alloc));
  }
  binary.max_live_words = analysis.has_value()
                              ? analysis->kernel_max_live_words()
                              : alloc::KernelMaxLive(virt);
  const std::vector<arch::OccupancyLevel> levels = arch::EnumerateOccupancyLevels(
      spec, options.cache_config, virt.launch.block_dim);
  auto compile_level = [&](const arch::OccupancyLevel& level,
                           std::vector<isa::Module>* pool) {
    return analysis.has_value()
               ? CompileAtLevel(*analysis, spec, level, options, pool)
               : CompileAtLevel(virt, spec, level, options, pool);
  };
  // An installed fault injector draws its compile-fault and miscompile
  // decisions from one sequential stream interleaved with the level
  // loop; fanning out would permute it, so the injector forces serial.
  const bool fan_out = options.compile_threads != 1 &&
                       FaultInjector::Current() == nullptr &&
                       levels.size() > 1;
  if (!fan_out) {
    for (const arch::OccupancyLevel& level : levels) {
      Result<runtime::KernelVersion> version =
          compile_level(level, &binary.modules);
      if (version.has_value()) {
        binary.versions.push_back(std::move(*version));
      } else {
        RecordSkip(&binary, level, version.status());
      }
    }
  } else {
    // Parallel fan-out: every worker realizes into a private module
    // pool; results are committed in level order below, so the binary
    // (module pool layout included) is bit-identical to the serial
    // loop above for any thread count.
    std::vector<std::vector<isa::Module>> pools(levels.size());
    std::vector<std::optional<Result<runtime::KernelVersion>>> results(
        levels.size());
    ParallelFor(levels.size(), options.compile_threads, [&](std::size_t i) {
      results[i].emplace(compile_level(levels[i], &pools[i]));
    });
    for (std::size_t i = 0; i < levels.size(); ++i) {
      Result<runtime::KernelVersion>& version = *results[i];
      if (version.has_value()) {
        // Repoint the worker-local pool slot into the shared pool.
        binary.modules.push_back(
            std::move(pools[i][version->module_index]));
        binary.versions.push_back(std::move(*version));
        binary.versions.back().module_index =
            static_cast<std::uint32_t>(binary.modules.size() - 1);
      } else {
        RecordSkip(&binary, levels[i], version.status());
      }
    }
  }
  if (binary.versions.empty()) {
    throw CompileError(StrFormat("kernel '%s' has no feasible occupancy on %s",
                                 virt.name.c_str(), spec.name.c_str()));
  }
  if (options.validate) {
    RunValidationGate(virt, &binary, options.probe);
  }
  return binary;
}

namespace {

// Keep at most `cap` versions: always the first (original) plus an even
// subsample of the rest that retains the last entry.
void SubsampleVersions(std::vector<runtime::KernelVersion>* versions,
                       std::uint32_t cap) {
  if (versions->size() <= cap || cap < 2) {
    return;
  }
  std::vector<runtime::KernelVersion> kept;
  kept.push_back(versions->front());
  const std::size_t tail = versions->size() - 1;  // candidates after original
  const std::size_t want = cap - 1;
  for (std::size_t i = 0; i < want; ++i) {
    // Even positions over [1, tail], ending exactly at the last entry.
    const std::size_t pick = (i + 1) * tail / want;
    kept.push_back((*versions)[pick]);
  }
  // The arithmetic above can duplicate when tail < want; dedup by tag.
  std::vector<runtime::KernelVersion> unique;
  for (runtime::KernelVersion& version : kept) {
    bool dup = false;
    for (const runtime::KernelVersion& existing : unique) {
      dup |= existing.module_index == version.module_index &&
             existing.smem_padding_bytes == version.smem_padding_bytes;
    }
    if (!dup) {
      unique.push_back(std::move(version));
    }
  }
  *versions = std::move(unique);
}

}  // namespace

namespace {

// The Fig. 8 selection proper; the public CompileMultiVersion wraps it
// with the optional translation-validation gate.
runtime::MultiVersionBinary CompileMultiVersionImpl(
    const isa::Module& virt, const arch::GpuSpec& spec,
    const TuneOptions& options) {
  telemetry::ScopedSpan span("compiler", "compile.multiversion");
  span.AddArg("kernel", virt.name);
  runtime::MultiVersionBinary binary;
  binary.kernel_name = virt.name;
  binary.gpu_name = spec.name;
  binary.can_tune = options.can_tune;
  // One shared analysis feeds the original, the conservative search,
  // the upward candidates and the fail-safes.  The Fig. 8 control flow
  // itself stays serial: its searches are early-exit sequential scans,
  // and the fault injector's streams are ordered along them.
  std::optional<alloc::AnalyzedModule> analysis;
  if (options.reuse_analysis) {
    analysis.emplace(alloc::AnalyzeModule(virt, options.alloc));
  }
  auto compile_level = [&](const arch::OccupancyLevel& level) {
    return analysis.has_value()
               ? CompileAtLevel(*analysis, spec, level, options,
                                &binary.modules)
               : CompileAtLevel(virt, spec, level, options, &binary.modules);
  };
  binary.max_live_words = analysis.has_value()
                              ? analysis->kernel_max_live_words()
                              : alloc::KernelMaxLive(virt);
  binary.direction = binary.max_live_words >= MaxLiveThreshold(spec)
                         ? runtime::TuneDirection::kIncreasing
                         : runtime::TuneDirection::kDecreasing;

  const runtime::KernelVersion original =
      analysis.has_value()
          ? CompileOriginal(*analysis, spec, options, &binary.modules)
          : CompileOriginal(virt, spec, options, &binary.modules);
  const std::uint32_t original_blocks =
      original.occupancy.active_blocks_per_sm;
  binary.versions.push_back(original);

  const std::vector<arch::OccupancyLevel> levels = arch::EnumerateOccupancyLevels(
      spec, options.cache_config, virt.launch.block_dim);

  bool had_conservative = false;
  if (binary.direction == runtime::TuneDirection::kIncreasing) {
    // Find the conservative version: the highest occupancy at which all
    // variables still fit on chip — leftover local-memory words must fit
    // the per-thread share of the L1.
    std::optional<runtime::KernelVersion> conservative;
    for (const arch::OccupancyLevel& level : levels) {
      Result<runtime::KernelVersion> version = compile_level(level);
      if (!version.has_value()) {
        RecordSkip(&binary, level, version.status());
        continue;
      }
      const std::uint32_t threads =
          level.blocks_per_sm * virt.launch.block_dim;
      const std::uint32_t l1_share =
          spec.L1Bytes(options.cache_config) / std::max(threads, 1u);
      if (version->alloc_stats.local_words * 4 <= l1_share) {
        conservative = std::move(*version);
        had_conservative = true;
        break;
      }
    }
    // Candidates from conservative occupancy up to maximum (Fig. 8
    // lines 7-9), walked in increasing-occupancy order.
    const std::uint32_t floor_blocks =
        conservative.has_value()
            ? conservative->occupancy.active_blocks_per_sm
            : original_blocks + 1;
    std::vector<runtime::KernelVersion> ups;
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {  // ascending
      if (it->blocks_per_sm < floor_blocks ||
          it->blocks_per_sm <= original_blocks) {
        continue;
      }
      if (conservative.has_value() &&
          it->blocks_per_sm == conservative->occupancy.active_blocks_per_sm) {
        runtime::KernelVersion v = *conservative;
        v.tag = "conservative";
        ups.push_back(std::move(v));
        continue;
      }
      Result<runtime::KernelVersion> version = compile_level(*it);
      if (version.has_value()) {
        ups.push_back(std::move(*version));
      } else {
        RecordSkip(&binary, *it, version.status());
      }
    }
    for (runtime::KernelVersion& version : ups) {
      binary.versions.push_back(std::move(version));
    }
  } else {
    // Decreasing direction (Fig. 8 line 11 + Section 3.3): a single
    // binary; occupancy is lowered at launch time with shared-memory
    // padding, so each lower level is a padded variant of the original.
    const isa::Module& module = binary.modules[original.module_index];
    for (const arch::OccupancyLevel& level : levels) {
      if (level.blocks_per_sm >= original_blocks || level.blocks_per_sm == 0) {
        continue;
      }
      const std::optional<std::uint32_t> padding = PaddingForBlocks(
          module, spec, options.cache_config, level.blocks_per_sm);
      if (!padding.has_value()) {
        continue;
      }
      runtime::KernelVersion version = original;
      version.smem_padding_bytes = *padding;
      version.occupancy =
          OccupancyOf(module, spec, options.cache_config, *padding);
      version.tag = StrFormat("occ=%.3f", version.occupancy.occupancy);
      binary.versions.push_back(std::move(version));
    }
  }

  SubsampleVersions(&binary.versions, options.max_versions);

  // Fail-safe versions in the opposite direction (Section 3.3): probed
  // by the runtime only when the predicted direction yields nothing.
  // Downward fail-safes are free (padded variants of the original
  // binary); upward fail-safes are fresh compilations.
  if (binary.direction == runtime::TuneDirection::kIncreasing) {
    const isa::Module& module = binary.modules[original.module_index];
    std::uint32_t added = 0;
    for (const arch::OccupancyLevel& level : levels) {
      if (level.blocks_per_sm >= original_blocks || added >= 2) {
        continue;
      }
      const std::optional<std::uint32_t> padding = PaddingForBlocks(
          module, spec, options.cache_config, level.blocks_per_sm);
      if (!padding.has_value()) {
        continue;
      }
      runtime::KernelVersion version = original;
      version.smem_padding_bytes = *padding;
      version.occupancy =
          OccupancyOf(module, spec, options.cache_config, *padding);
      version.tag = StrFormat("failsafe-occ=%.3f", version.occupancy.occupancy);
      binary.failsafe.push_back(std::move(version));
      ++added;
    }
  } else {
    std::uint32_t added = 0;
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {  // ascending
      if (it->blocks_per_sm <= original_blocks || added >= 2) {
        continue;
      }
      Result<runtime::KernelVersion> version = compile_level(*it);
      if (version.has_value()) {
        version->tag = "failsafe-" + version->tag;
        binary.failsafe.push_back(std::move(*version));
        ++added;
      } else {
        RecordSkip(&binary, *it, version.status());
      }
    }
  }

  // Static selection for untunable kernels.  The conservative version
  // (all variables on chip — the unified allocation of [11]) is the
  // preferred static pick; when the conservative occupancy coincides
  // with the original's, the original *is* the all-on-chip version.
  // Otherwise fall back to the analytical model: the lowest occupancy
  // that still provides the warps it asks for.
  for (std::uint32_t i = 0; i < binary.versions.size(); ++i) {
    if (binary.versions[i].tag == "conservative") {
      binary.static_choice = i;
      return binary;
    }
  }
  if (had_conservative) {
    binary.static_choice = 0;
    return binary;
  }
  const StaticProfile profile = ProfileModule(virt, spec);
  const std::uint32_t needed = WarpsNeeded(profile);
  binary.static_choice = 0;
  std::uint32_t best_warps = UINT32_MAX;
  for (std::uint32_t i = 0; i < binary.versions.size(); ++i) {
    const std::uint32_t warps =
        binary.versions[i].occupancy.active_warps_per_sm;
    if (warps >= needed && warps < best_warps) {
      best_warps = warps;
      binary.static_choice = i;
    }
  }
  if (best_warps == UINT32_MAX) {
    // Nothing satisfies the model: take the highest occupancy available.
    std::uint32_t max_warps = 0;
    for (std::uint32_t i = 0; i < binary.versions.size(); ++i) {
      if (binary.versions[i].occupancy.active_warps_per_sm > max_warps) {
        max_warps = binary.versions[i].occupancy.active_warps_per_sm;
        binary.static_choice = i;
      }
    }
  }
  return binary;
}

}  // namespace

runtime::MultiVersionBinary CompileMultiVersion(const isa::Module& virt,
                                                const arch::GpuSpec& spec,
                                                const TuneOptions& options) {
  runtime::MultiVersionBinary binary =
      CompileMultiVersionImpl(virt, spec, options);
  if (options.validate) {
    RunValidationGate(virt, &binary, options.probe);
  }
  return binary;
}

TunedBinary TuneBinary(const std::vector<std::uint8_t>& cubin,
                       const arch::GpuSpec& spec, const TuneOptions& options) {
  telemetry::ScopedSpan span("compiler", "compile.tune");
  const isa::Module virt = isa::DecodeModule(cubin);
  span.AddArg("kernel", virt.name);
  TunedBinary tuned;
  tuned.binary = CompileMultiVersion(virt, spec, options);
  tuned.images.reserve(tuned.binary.modules.size());
  for (const isa::Module& module : tuned.binary.modules) {
    tuned.images.push_back(isa::EncodeModule(module));
  }
  span.AddArg("versions",
              static_cast<std::uint64_t>(tuned.binary.versions.size()));
  span.AddArg("skips",
              static_cast<std::uint64_t>(tuned.binary.compile_skips.size()));
  return tuned;
}

}  // namespace orion::core
