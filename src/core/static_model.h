// Static occupancy selection model.
//
// Used when dynamic tuning is impossible (Fig. 8, else-branch: a kernel
// with a single invocation and too few threads to split, e.g. the
// paper's `particles` benchmark).  Following the static selection of
// Hayes & Zhang [11], the model estimates how many resident warps are
// needed to hide memory latency from the kernel's static instruction
// mix, and picks the lowest candidate occupancy that provides them:
//
//   warps_needed = ceil(mem_latency / issue_cycles_between_memory_ops)
//
// where the inter-memory-op distance is the loop-weighted static
// instruction count divided by the loop-weighted static memory-op
// count.  This is the WS * CDI / DL test of Fig. 8 line 17.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"
#include "isa/isa.h"
#include "runtime/multiversion.h"
#include "sim/memory.h"

namespace orion::core {

struct StaticProfile {
  double weighted_instrs = 0.0;      // loop-weighted static instructions
  double weighted_mem_ops = 0.0;     // loop-weighted off-chip memory ops
  double weighted_smem_ops = 0.0;
  double avg_mem_latency = 0.0;      // estimated, from the target GPU
};

// Gathers the static profile of a module's kernel (loop-weighted).
StaticProfile ProfileModule(const isa::Module& module,
                            const arch::GpuSpec& spec);

// Resident warps per SM needed to hide memory latency.
std::uint32_t WarpsNeeded(const StaticProfile& profile);

// Simulation-backed refinement of the static choice: evaluates every
// primary version of `binary` against a private copy of `base` (one
// full-grid launch each, fanned out over sim::ParallelSweep) and
// returns the index of the fastest version (ties break to the lowest
// index, i.e. the analytic choice's walk order).  Used when a
// representative input is available at compile time but the kernel
// cannot be tuned at runtime.  `threads` = 0 uses hardware concurrency;
// the result is identical for any thread count.
std::uint32_t RefineStaticChoiceBySimulation(
    const runtime::MultiVersionBinary& binary, const arch::GpuSpec& spec,
    arch::CacheConfig cache_config, const sim::GlobalMemory& base,
    const std::vector<std::uint32_t>& params, unsigned threads = 0);

}  // namespace orion::core
