#include "persist/session.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <mutex>
#include <set>
#include <utility>

#include "common/log.h"
#include "common/strings.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "telemetry/telemetry.h"

namespace orion::persist {

namespace {

constexpr const char* kJournalFile = "journal.ojl";
constexpr const char* kStoreDir = "store";
constexpr const char* kLockFile = "lock";

// In-process half of the advisory session lock.  The on-disk lock file
// carries a pid, so a second *process* is refused by liveness check;
// two opens from the same pid would both look "alive", so the registry
// refuses them here first.  Keyed by the normalized absolute path.
std::mutex g_session_lock_mutex;
std::set<std::string>& SessionLockRegistry() {
  static std::set<std::string> held;
  return held;
}

std::string SessionLockKey(const std::string& dir) {
  std::error_code ec;
  const std::filesystem::path absolute =
      std::filesystem::absolute(dir, ec);
  return ec ? dir : absolute.lexically_normal().string();
}

Status AcquireSessionLock(const std::string& dir) {
  {
    std::lock_guard<std::mutex> guard(g_session_lock_mutex);
    if (!SessionLockRegistry().insert(SessionLockKey(dir)).second) {
      return Status::Error(
          StatusCode::kUnavailable,
          StrFormat("session at '%s' is already open in this process — "
                    "one writer at a time",
                    dir.c_str()));
    }
  }
  const Status status = AcquireLockFile(dir + "/" + kLockFile);
  if (!status.ok()) {
    std::lock_guard<std::mutex> guard(g_session_lock_mutex);
    SessionLockRegistry().erase(SessionLockKey(dir));
    return status.WithContext("session at '" + dir + "'");
  }
  return Status::Ok();
}

void ReleaseSessionLock(const std::string& dir) {
  ReleaseLockFile(dir + "/" + kLockFile);
  std::lock_guard<std::mutex> guard(g_session_lock_mutex);
  SessionLockRegistry().erase(SessionLockKey(dir));
}

// Journal file header (magic + format) — mirrored from journal.cpp so
// record offsets can be reconstructed for the stable-point truncation.
constexpr std::uint64_t kJournalHeaderBytes = 8;
// Frame overhead per record: u32 len + u8 type + u64 checksum.
constexpr std::uint64_t kFrameBytes = 4 + 1 + 8;

// Records that commit state.  Anything after the last committed record
// is an uncommitted trailer (an intent whose result never landed, fault
// events of an iteration that will re-run live) and is dropped on
// recovery so nothing is double-counted.
bool CommitsState(RecordType type) {
  switch (type) {
    case RecordType::kMeta:
    case RecordType::kArtifactNote:
    case RecordType::kProbeResult:
    case RecordType::kLock:
    case RecordType::kNote:
      return true;
    case RecordType::kProbeIntent:
    case RecordType::kFaultEvent:
    case RecordType::kQuarantineEvent:
      return false;
  }
  return false;
}

std::vector<std::uint8_t> EncodeMeta(const SessionMeta& meta) {
  Writer w;
  w.U64(meta.kernel_hash);
  w.Str(meta.gpu);
  w.Str(meta.fingerprint);
  return w.Take();
}

void PutHealthSnapshot(Writer* w, const runtime::HealthReport& health,
                       const std::vector<std::uint32_t>& fault_counts) {
  w->U64(health.launches_attempted);
  w->U64(health.launches_succeeded);
  w->U64(health.transient_faults);
  w->U64(health.retries);
  w->U64(health.watchdog_trips);
  w->U64(health.faulted_iterations);
  w->F64(health.backoff_ms);
  w->U8(health.fallback_taken ? 1 : 0);
  w->U32(static_cast<std::uint32_t>(health.quarantined.size()));
  for (const runtime::Quarantine& q : health.quarantined) {
    w->U32(q.version);
    w->U8(static_cast<std::uint8_t>(q.reason));
  }
  w->U32(static_cast<std::uint32_t>(fault_counts.size()));
  for (std::uint32_t count : fault_counts) {
    w->U32(count);
  }
}

bool GetHealthSnapshot(Reader* r, runtime::HealthReport* health,
                       std::vector<std::uint32_t>* fault_counts) {
  health->launches_attempted = r->U64();
  health->launches_succeeded = r->U64();
  health->transient_faults = r->U64();
  health->retries = r->U64();
  health->watchdog_trips = r->U64();
  health->faulted_iterations = r->U64();
  health->backoff_ms = r->F64();
  health->fallback_taken = r->U8() != 0;
  const std::uint32_t quarantines = r->U32();
  if (!r->ok() || quarantines > r->Remaining()) {
    return false;
  }
  for (std::uint32_t i = 0; i < quarantines; ++i) {
    runtime::Quarantine q;
    q.version = r->U32();
    q.reason = static_cast<runtime::QuarantineReason>(r->U8());
    health->quarantined.push_back(q);
  }
  const std::uint32_t counts = r->U32();
  if (!r->ok() || counts > r->Remaining()) {
    return false;
  }
  for (std::uint32_t i = 0; i < counts; ++i) {
    fault_counts->push_back(r->U32());
  }
  return r->ok();
}

Status CorruptRecord(const char* type_name) {
  return Status::Error(StatusCode::kDataLoss,
                       StrFormat("journal %s record failed to decode "
                                 "(checksummed but malformed)",
                                 type_name));
}

}  // namespace

Session::Session(std::string dir, SessionMeta meta)
    : dir_(std::move(dir)),
      meta_(std::move(meta)),
      journal_(dir_ + "/" + kJournalFile),
      store_(dir_ + "/" + kStoreDir) {}

Session::~Session() {
  if (lock_held_) {
    ReleaseSessionLock(dir_);
  }
}

Result<std::unique_ptr<Session>> Session::Open(const std::string& dir,
                                               const SessionMeta& meta) {
  ORION_TRACE_SPAN("persist", "persist.session.open");
  ORION_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<Session> session(new Session(dir, meta));
  // The advisory lock comes first: recovery mutates the directory
  // (journal truncation, store quarantine), so even that must be
  // single-writer.  The flag is set before Recover() so an unwinding
  // SimulatedCrash releases the lock exactly like a process death.
  ORION_RETURN_IF_ERROR(AcquireSessionLock(dir));
  session->lock_held_ = true;
  ORION_RETURN_IF_ERROR(session->Recover());
  return session;
}

Result<std::unique_ptr<Session>> Session::Inspect(const std::string& dir) {
  ORION_TRACE_SPAN("persist", "persist.session.inspect");
  // Peek at the journal's first record to learn the identity, then open
  // normally so all recovery invariants (torn-tail truncation, fsck,
  // identity verification) apply exactly as for a resumed run.
  Journal journal(dir + "/" + kJournalFile);
  Result<JournalScan> scanned = journal.Scan();
  if (!scanned.has_value()) {
    return scanned.status();  // kNotFound: no journal; kDataLoss: corrupt
  }
  if (scanned->records.empty() ||
      scanned->records[0].type != RecordType::kMeta) {
    return Status::Error(
        StatusCode::kNotFound,
        StrFormat("no session identity recorded at '%s'", dir.c_str()));
  }
  Reader r(scanned->records[0].payload);
  SessionMeta meta;
  meta.kernel_hash = r.U64();
  meta.gpu = r.Str();
  meta.fingerprint = r.Str();
  if (!r.ok() || !r.AtEnd()) {
    return CorruptRecord("meta");
  }
  return Open(dir, meta);
}

Status Session::Recover() {
  // The store is repaired first: crash debris (.tmp leftovers) and any
  // corrupt record are quarantined before anything can read them.
  fsck_report_ = store_.Fsck();

  Result<JournalScan> scanned = journal_.Scan();
  if (!scanned.has_value()) {
    if (scanned.status().code() == StatusCode::kNotFound) {
      // Fresh session: the identity record is the first durable write.
      AppendOrDegrade(RecordType::kMeta, EncodeMeta(meta_));
      return Status::Ok();
    }
    return scanned.status();  // kDataLoss: corrupt history, never resumed
  }
  JournalScan scan = std::move(*scanned);

  // Drop the uncommitted trailer: records after the last state-committing
  // one belong to an iteration whose result never became durable — it
  // re-runs live, and keeping its intents/fault events would double
  // count.  The file is truncated to match so new appends continue from
  // the committed state.
  std::size_t keep = 0;
  std::uint64_t keep_bytes = kJournalHeaderBytes;
  std::uint64_t offset = kJournalHeaderBytes;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    offset += kFrameBytes + scan.records[i].payload.size();
    if (CommitsState(scan.records[i].type)) {
      keep = i + 1;
      keep_bytes = offset;
    }
  }
  scan.records.resize(keep);
  truncated_bytes_ = scan.truncated_bytes + (scan.stable_size - keep_bytes);
  if (keep == 0) {
    // Nothing committed survived (crash during the very first append):
    // start the journal over.
    if (FileExists(journal_.path())) {
      ORION_RETURN_IF_ERROR(RemoveFile(journal_.path()));
    }
    AppendOrDegrade(RecordType::kMeta, EncodeMeta(meta_));
    return Status::Ok();
  }
  if (keep_bytes < scan.stable_size || scan.truncated_bytes > 0) {
    ORION_RETURN_IF_ERROR(TruncateFile(journal_.path(), keep_bytes));
    ORION_LOG(WARN) << "session recovery: dropped "
                    << truncated_bytes_
                    << " uncommitted journal bytes (torn tail / trailer)";
    ORION_COUNTER_ADD("persist.session.recoveries", 1);
  }

  // Identity check before anything is believed.
  {
    if (scan.records[0].type != RecordType::kMeta) {
      return Status::Error(StatusCode::kDataLoss,
                           "journal does not start with a meta record");
    }
    Reader r(scan.records[0].payload);
    SessionMeta recorded;
    recorded.kernel_hash = r.U64();
    recorded.gpu = r.Str();
    recorded.fingerprint = r.Str();
    if (!r.AtEnd()) {
      return CorruptRecord("meta");
    }
    if (recorded.kernel_hash != meta_.kernel_hash ||
        recorded.gpu != meta_.gpu ||
        recorded.fingerprint != meta_.fingerprint) {
      return Status::Error(
          StatusCode::kInvalidArgument,
          StrFormat("session at '%s' belongs to kernel %016llx on %s "
                    "(options %s), not to this run — refusing to mix",
                    dir_.c_str(),
                    static_cast<unsigned long long>(recorded.kernel_hash),
                    recorded.gpu.c_str(), recorded.fingerprint.c_str()));
    }
  }

  // Rebuild replay state.
  for (std::size_t i = 1; i < scan.records.size(); ++i) {
    const JournalRecord& record = scan.records[i];
    switch (record.type) {
      case RecordType::kProbeResult: {
        Reader r(record.payload);
        const std::uint32_t iteration = r.U32();
        runtime::IterationRecord iter;
        iter.version = r.U32();
        iter.faulted = r.U8() != 0;
        iter.ms = r.F64();
        iter.energy = r.F64();
        iter.occupancy = r.F64();
        GuardSnapshot snapshot;
        if (!GetHealthSnapshot(&r, &snapshot.health, &snapshot.fault_counts) ||
            !r.AtEnd()) {
          return CorruptRecord("probe-result");
        }
        iterations_[iteration] = iter;
        snapshot_ = std::move(snapshot);
        break;
      }
      case RecordType::kFaultEvent: {
        Reader r(record.payload);
        LoggedFault fault;
        fault.iteration = r.U32();
        fault.version = r.U32();
        const std::uint32_t code = r.U32();
        const std::string message = r.Str();
        r.U8();  // counted flag (informational)
        if (!r.AtEnd()) {
          return CorruptRecord("fault-event");
        }
        fault.status = Status::Error(static_cast<StatusCode>(code), message);
        restored_faults_.push_back(std::move(fault));
        break;
      }
      case RecordType::kLock: {
        Result<TuneArtifact> tune = DecodeTuneArtifact(record.payload);
        if (!tune.has_value()) {
          return CorruptRecord("lock");
        }
        lock_ = std::move(*tune);
        break;
      }
      case RecordType::kMeta:
        return Status::Error(StatusCode::kDataLoss,
                             "journal holds a second meta record");
      case RecordType::kArtifactNote:
      case RecordType::kProbeIntent:
      case RecordType::kQuarantineEvent:
      case RecordType::kNote:
        break;  // informational
    }
  }
  recovered_ = scan.records.size();
  if (recovered_ > 1) {
    ORION_LOG(INFO) << "session resumed: " << iterations_.size()
                    << " recorded iterations, "
                    << (lock_.has_value() ? "locked" : "no lock yet");
  }
  return Status::Ok();
}

void Session::AppendOrDegrade(RecordType type,
                              const std::vector<std::uint8_t>& payload) {
  if (degraded_) {
    return;
  }
  const Status status = journal_.Append(type, payload);
  if (!status.ok()) {
    degraded_ = true;
    ORION_COUNTER_ADD("persist.session.degraded", 1);
    ORION_LOG(ERROR) << "session journal append failed — journaling "
                        "disabled, the run continues without the resume "
                        "guarantee: "
                     << status.ToString();
  }
}

Status Session::SaveBinary(const runtime::MultiVersionBinary& binary) {
  const ArtifactKey key = BinaryKey();
  ORION_RETURN_IF_ERROR(store_.Put(key, EncodeBinaryArtifact(binary)));
  Writer w;
  w.Str(key.ToString());
  AppendOrDegrade(RecordType::kArtifactNote, w.Take());
  return Status::Ok();
}

Result<runtime::MultiVersionBinary> Session::LoadBinary() {
  Result<std::vector<std::uint8_t>> bytes = store_.Get(BinaryKey());
  if (!bytes.has_value()) {
    return bytes.status();
  }
  return DecodeBinaryArtifact(*bytes);
}

Status Session::SaveTuneResult(const TuneArtifact& tune) {
  return store_.Put(TuneKey(), EncodeTuneArtifact(tune));
}

Result<TuneArtifact> Session::LoadTuneResult() {
  Result<std::vector<std::uint8_t>> bytes = store_.Get(TuneKey());
  if (!bytes.has_value()) {
    return bytes.status();
  }
  return DecodeTuneArtifact(*bytes);
}

bool Session::ReplayIteration(std::uint32_t iteration,
                              std::uint32_t expected_version,
                              runtime::IterationRecord* record) {
  const auto found = iterations_.find(iteration);
  if (found == iterations_.end()) {
    return false;
  }
  if (expected_version != runtime::RunJournal::kAnyVersion &&
      found->second.version != expected_version) {
    // The deterministic walk disagrees with the recorded history —
    // semantic corruption, as fatal as a bad checksum.
    throw JournalError(StrFormat(
        "journal replay diverged at iteration %u: recorded version %u, "
        "the tuner chose %u",
        iteration, found->second.version, expected_version));
  }
  *record = found->second;
  ++replayed_;
  ORION_COUNTER_ADD("persist.session.replays", 1);
  return true;
}

void Session::ProbeIntent(std::uint32_t iteration, std::uint32_t version) {
  Writer w;
  w.U32(iteration);
  w.U32(version);
  AppendOrDegrade(RecordType::kProbeIntent, w.Take());
}

void Session::ProbeResult(std::uint32_t iteration,
                          const runtime::IterationRecord& record,
                          const runtime::HealthReport& health,
                          const std::vector<std::uint32_t>& fault_counts) {
  Writer w;
  w.U32(iteration);
  w.U32(record.version);
  w.U8(record.faulted ? 1 : 0);
  w.F64(record.ms);
  w.F64(record.energy);
  w.F64(record.occupancy);
  PutHealthSnapshot(&w, health, fault_counts);
  AppendOrDegrade(RecordType::kProbeResult, w.Take());
  // Mirror the append into the recovered-iterations map so a live
  // session's recorded() view equals what a reopen would scan back —
  // the analysis of a just-finished session must match the analysis
  // of the same directory reopened (resume stability).
  iterations_[iteration] = record;
}

void Session::OnFault(std::uint32_t iteration, std::uint32_t version,
                      const Status& status, bool counted) {
  Writer w;
  w.U32(iteration);
  w.U32(version);
  w.U32(static_cast<std::uint32_t>(status.code()));
  w.Str(status.message());
  w.U8(counted ? 1 : 0);
  AppendOrDegrade(RecordType::kFaultEvent, w.Take());
}

void Session::OnQuarantine(const runtime::Quarantine& quarantine) {
  Writer w;
  w.U32(quarantine.version);
  w.U8(static_cast<std::uint8_t>(quarantine.reason));
  AppendOrDegrade(RecordType::kQuarantineEvent, w.Take());
}

bool Session::RestoreGuard(runtime::HealthReport* health,
                           std::vector<std::uint32_t>* fault_counts) {
  if (!snapshot_.has_value()) {
    return false;
  }
  *health = snapshot_->health;
  for (const LoggedFault& fault : restored_faults_) {
    health->fault_log.push_back(
        {fault.iteration, fault.version, fault.status});
  }
  *fault_counts = snapshot_->fault_counts;
  ORION_COUNTER_ADD("persist.session.guard_restores", 1);
  return true;
}

void Session::LockDecision(const runtime::TunedRunResult& result) {
  TuneArtifact tune;
  tune.final_version = result.final_version;
  tune.iterations_to_settle = result.iterations_to_settle;
  tune.steady_ms = result.steady_ms;
  tune.steady_energy = result.steady_energy;
  tune.steady_occupancy = result.steady_occupancy.occupancy;
  tune.fallback_taken = result.health.fallback_taken;
  tune.watchdog_trips = result.health.watchdog_trips;
  tune.faulted_iterations =
      static_cast<std::uint32_t>(result.health.faulted_iterations);
  // Median probe runtime per candidate, from the run's usable records.
  std::uint32_t max_version = 0;
  for (const runtime::IterationRecord& record : result.records) {
    max_version = std::max(max_version, record.version);
  }
  std::vector<std::vector<double>> samples(max_version + 1);
  for (const runtime::IterationRecord& record : result.records) {
    if (!record.faulted) {
      samples[record.version].push_back(record.ms);
    }
  }
  tune.candidate_median_ms.assign(
      samples.size(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t v = 0; v < samples.size(); ++v) {
    if (samples[v].empty()) {
      continue;
    }
    std::sort(samples[v].begin(), samples[v].end());
    tune.candidate_median_ms[v] = samples[v][samples[v].size() / 2];
  }
  AppendOrDegrade(RecordType::kLock, EncodeTuneArtifact(tune));
  if (!SaveTuneResult(tune).ok()) {
    // Already logged by the store; the journal's lock record still
    // carries the decision, so a warm run can rebuild the artifact.
  }
  lock_ = std::move(tune);
}

}  // namespace orion::persist
