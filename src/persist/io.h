// Filesystem primitives for the persistence layer — the single
// chokepoint every durable read and write goes through, and therefore
// the place the crash-injection harness (common/faultinject) hooks.
//
// Write discipline:
//   * WriteFileAtomic — the commit protocol for store records: the
//     bytes land in `<path>.tmp` first and only a successful rename
//     publishes them, so a reader can never observe a half-written
//     record under the final name.  A crash leaves either the old
//     state or a `.tmp` leftover (which fsck quarantines).
//   * AppendFile — the journal's append: a crash can tear only the
//     tail, which recovery truncates (the write-ahead contract).
//
// Injected faults (when a FaultInjector with persist.* keys is
// installed): kill-points crash the process at the Nth durable write
// (std::_Exit in CLI mode, SimulatedCrash in test mode — no
// destructors, no flushes, exactly like SIGKILL), torn renames drop the
// publish step, short writes land a prefix, ENOSPC refuses the write,
// and reads may come back with a flipped bit.  None of the faults are
// ever reported to the caller as success-with-bad-data: silent classes
// are caught later by per-record checksums, loud classes travel as
// Status.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/status.h"

namespace orion::persist {

// Thrown when an injected kill-point fires in CrashMode::kThrow (the
// in-process test mode).  Deliberately NOT a subclass of the
// candidate-scoped failure types: nothing in the pipeline catches it,
// so it unwinds the whole run the way a real kill ends the process.
class SimulatedCrash : public OrionError {
 public:
  explicit SimulatedCrash(std::string message)
      : OrionError(std::move(message)) {}
};

// How an injected kill-point ends the process.  kExit (orion-cc) is a
// real no-cleanup process exit with kCrashExitCode, indistinguishable
// from SIGKILL for the on-disk state; kThrow (tests) unwinds into the
// test harness so one process can run the whole seeded matrix.
enum class CrashMode : std::uint8_t { kThrow, kExit };

void SetCrashMode(CrashMode mode);
CrashMode GetCrashMode();

// Exit status of an injected kill in CrashMode::kExit (mirrors the
// 128+SIGKILL convention so the CI crash-soak can assert on it).
inline constexpr int kCrashExitCode = 137;

// Ends the process the way an injected kill-point does: SimulatedCrash
// in CrashMode::kThrow, std::_Exit(kCrashExitCode) in kExit — no
// destructors, no flushes.  The service layer's worker-kill hook
// routes through here so daemon crashes share the persist kill
// semantics and exit code.
[[noreturn]] void CrashNow(const std::string& what);

Status EnsureDir(const std::string& dir);
bool FileExists(const std::string& path);
bool IsDirectory(const std::string& path);
std::uint64_t FileSize(const std::string& path);  // 0 when absent

// Regular files directly inside `dir`, file names only, sorted.
std::vector<std::string> ListDir(const std::string& dir);

Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status TruncateFile(const std::string& path, std::uint64_t size);

// Reads the whole file.  kNotFound when absent; an installed injector
// may flip a bit of the returned bytes (persist.bitflip_read) — the
// caller's checksum is responsible for catching it.
Result<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path);

// Temp-file + rename commit.  On success the final name holds exactly
// `bytes`; on failure the final name is untouched (modulo injected
// short writes, which commit a checksummed-detectable prefix).
Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

// Appends `bytes` to `path` (creating it).  A crash mid-append tears
// the tail; journal recovery truncates it.
Status AppendFile(const std::string& path,
                  const std::vector<std::uint8_t>& bytes);

// Advisory lock file: created O_CREAT|O_EXCL holding this process's
// pid.  kUnavailable when another *live* process holds it; a dead
// owner's stale lock (a real SIGKILL or an injected exit-mode crash
// leaves one behind) is broken and re-acquired.  Deliberately NOT
// routed through the fault injector: lock churn must not shift the
// persist.kill_at op numbering the seeded matrices depend on.
Status AcquireLockFile(const std::string& path);
// Removes a lock file this process acquired.  Best-effort (the lock is
// advisory); never throws.
void ReleaseLockFile(const std::string& path);

}  // namespace orion::persist
