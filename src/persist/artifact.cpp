#include "persist/artifact.h"

#include "common/error.h"
#include "isa/binary.h"
#include "persist/codec.h"

namespace orion::persist {

namespace {

constexpr std::uint32_t kBinaryFormat = 1;
constexpr std::uint32_t kTuneFormat = 1;

Status Corrupt(const char* what) {
  return Status::Error(StatusCode::kDataLoss,
                       std::string("corrupt artifact: ") + what);
}

void PutOccupancy(Writer* w, const arch::OccupancyResult& occ) {
  w->U32(occ.active_blocks_per_sm);
  w->U32(occ.active_warps_per_sm);
  w->U32(occ.active_threads_per_sm);
  w->F64(occ.occupancy);
  w->U8(static_cast<std::uint8_t>(occ.limiter));
}

arch::OccupancyResult GetOccupancy(Reader* r) {
  arch::OccupancyResult occ;
  occ.active_blocks_per_sm = r->U32();
  occ.active_warps_per_sm = r->U32();
  occ.active_threads_per_sm = r->U32();
  occ.occupancy = r->F64();
  occ.limiter = static_cast<arch::OccupancyLimiter>(r->U8());
  return occ;
}

void PutAllocStats(Writer* w, const alloc::AllocStats& stats) {
  w->U32(stats.peak_regs);
  w->U32(stats.local_words);
  w->U32(stats.spriv_words);
  w->U32(stats.abi_words);
  w->U32(stats.static_park_moves);
  w->F64(stats.weighted_park_moves);
  w->U32(stats.spilled_vregs);
  w->U32(stats.kernel_max_live_words);
  // stats.functions deliberately skipped (see header).
}

alloc::AllocStats GetAllocStats(Reader* r) {
  alloc::AllocStats stats;
  stats.peak_regs = r->U32();
  stats.local_words = r->U32();
  stats.spriv_words = r->U32();
  stats.abi_words = r->U32();
  stats.static_park_moves = r->U32();
  stats.weighted_park_moves = r->F64();
  stats.spilled_vregs = r->U32();
  stats.kernel_max_live_words = r->U32();
  return stats;
}

void PutVersion(Writer* w, const runtime::KernelVersion& version) {
  w->U32(version.module_index);
  w->U32(version.smem_padding_bytes);
  PutOccupancy(w, version.occupancy);
  PutAllocStats(w, version.alloc_stats);
  w->Str(version.tag);
  w->U8(static_cast<std::uint8_t>(version.validation.verdict));
  w->U32(version.validation.probes_run);
  w->Str(version.validation.detail);
}

runtime::KernelVersion GetVersion(Reader* r) {
  runtime::KernelVersion version;
  version.module_index = r->U32();
  version.smem_padding_bytes = r->U32();
  version.occupancy = GetOccupancy(r);
  version.alloc_stats = GetAllocStats(r);
  version.tag = r->Str();
  version.validation.verdict =
      static_cast<runtime::ValidationVerdict>(r->U8());
  version.validation.probes_run = r->U32();
  version.validation.detail = r->Str();
  return version;
}

}  // namespace

std::vector<std::uint8_t> EncodeBinaryArtifact(
    const runtime::MultiVersionBinary& binary) {
  Writer w;
  w.U32(kBinaryFormat);
  w.Str(binary.kernel_name);
  w.Str(binary.gpu_name);
  w.U32(static_cast<std::uint32_t>(binary.modules.size()));
  for (const isa::Module& module : binary.modules) {
    w.Blob(isa::EncodeModule(module));
  }
  w.U32(static_cast<std::uint32_t>(binary.versions.size()));
  for (const runtime::KernelVersion& version : binary.versions) {
    PutVersion(&w, version);
  }
  w.U32(static_cast<std::uint32_t>(binary.failsafe.size()));
  for (const runtime::KernelVersion& version : binary.failsafe) {
    PutVersion(&w, version);
  }
  w.U32(static_cast<std::uint32_t>(binary.compile_skips.size()));
  for (const runtime::CompileSkip& skip : binary.compile_skips) {
    w.Str(skip.level);
    w.U32(static_cast<std::uint32_t>(skip.status.code()));
    w.Str(skip.status.message());
    w.U8(static_cast<std::uint8_t>(skip.reason));
  }
  w.U8(static_cast<std::uint8_t>(binary.direction));
  w.U8(binary.can_tune ? 1 : 0);
  w.U32(binary.static_choice);
  w.U32(binary.max_live_words);
  return w.Take();
}

Result<runtime::MultiVersionBinary> DecodeBinaryArtifact(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.U32() != kBinaryFormat) {
    return Corrupt("unknown binary-artifact format");
  }
  runtime::MultiVersionBinary binary;
  binary.kernel_name = r.Str();
  binary.gpu_name = r.Str();
  const std::uint32_t module_count = r.U32();
  if (!r.ok() || module_count > r.Remaining()) {
    return Corrupt("module count out of range");
  }
  binary.modules.reserve(module_count);
  for (std::uint32_t i = 0; i < module_count; ++i) {
    const std::vector<std::uint8_t> image = r.Blob();
    if (!r.ok()) {
      return Corrupt("truncated module image");
    }
    try {
      binary.modules.push_back(isa::DecodeModule(image));
    } catch (const OrionError& error) {
      return Corrupt(error.what());
    }
  }
  const std::uint32_t version_count = r.U32();
  if (!r.ok() || version_count > r.Remaining()) {
    return Corrupt("version count out of range");
  }
  for (std::uint32_t i = 0; i < version_count; ++i) {
    binary.versions.push_back(GetVersion(&r));
  }
  const std::uint32_t failsafe_count = r.U32();
  if (!r.ok() || failsafe_count > r.Remaining()) {
    return Corrupt("failsafe count out of range");
  }
  for (std::uint32_t i = 0; i < failsafe_count; ++i) {
    binary.failsafe.push_back(GetVersion(&r));
  }
  const std::uint32_t skip_count = r.U32();
  if (!r.ok() || skip_count > r.Remaining()) {
    return Corrupt("skip count out of range");
  }
  for (std::uint32_t i = 0; i < skip_count; ++i) {
    runtime::CompileSkip skip;
    skip.level = r.Str();
    const std::uint32_t code = r.U32();
    const std::string message = r.Str();
    skip.status = Status::Error(static_cast<StatusCode>(code), message);
    skip.reason = static_cast<runtime::SkipReason>(r.U8());
    binary.compile_skips.push_back(std::move(skip));
  }
  binary.direction = static_cast<runtime::TuneDirection>(r.U8());
  binary.can_tune = r.U8() != 0;
  binary.static_choice = r.U32();
  binary.max_live_words = r.U32();
  if (!r.AtEnd()) {
    return Corrupt("binary artifact has trailing or missing bytes");
  }
  for (const runtime::KernelVersion& version : binary.versions) {
    if (version.module_index >= binary.modules.size()) {
      return Corrupt("version references a missing module");
    }
  }
  for (const runtime::KernelVersion& version : binary.failsafe) {
    if (version.module_index >= binary.modules.size()) {
      return Corrupt("failsafe references a missing module");
    }
  }
  return binary;
}

std::vector<std::uint8_t> EncodeTuneArtifact(const TuneArtifact& tune) {
  Writer w;
  w.U32(kTuneFormat);
  w.U32(tune.final_version);
  w.U32(tune.iterations_to_settle);
  w.F64(tune.steady_ms);
  w.F64(tune.steady_energy);
  w.F64(tune.steady_occupancy);
  w.U8(tune.fallback_taken ? 1 : 0);
  w.U64(tune.watchdog_trips);
  w.U32(tune.faulted_iterations);
  w.U32(static_cast<std::uint32_t>(tune.candidate_median_ms.size()));
  for (double ms : tune.candidate_median_ms) {
    w.F64(ms);
  }
  return w.Take();
}

Result<TuneArtifact> DecodeTuneArtifact(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.U32() != kTuneFormat) {
    return Corrupt("unknown tune-artifact format");
  }
  TuneArtifact tune;
  tune.final_version = r.U32();
  tune.iterations_to_settle = r.U32();
  tune.steady_ms = r.F64();
  tune.steady_energy = r.F64();
  tune.steady_occupancy = r.F64();
  tune.fallback_taken = r.U8() != 0;
  tune.watchdog_trips = r.U64();
  tune.faulted_iterations = r.U32();
  const std::uint32_t medians = r.U32();
  if (!r.ok() || medians > r.Remaining()) {
    return Corrupt("median count out of range");
  }
  for (std::uint32_t i = 0; i < medians; ++i) {
    tune.candidate_median_ms.push_back(r.F64());
  }
  if (!r.AtEnd()) {
    return Corrupt("tune artifact has trailing or missing bytes");
  }
  return tune;
}

}  // namespace orion::persist
