#include "persist/store.h"

#include "common/log.h"
#include "common/strings.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "telemetry/telemetry.h"

namespace orion::persist {

namespace {

constexpr std::uint32_t kMagic = 0x4f415254;  // "OART"
constexpr std::uint32_t kFormat = 1;
// magic + format + checksum + payload length.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr const char* kRecordSuffix = ".art";
constexpr const char* kQuarantineSuffix = ".quarantine";
constexpr const char* kTmpSuffix = ".tmp";

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string ArtifactKey::ToString() const {
  return StrFormat("%s|%016llx|%s|%s", kind.c_str(),
                   static_cast<unsigned long long>(kernel_hash), arch.c_str(),
                   options.c_str());
}

std::string ArtifactKey::FileName() const {
  // kind in clear for humans; arch+options folded into a hash so the
  // name stays short and filesystem-safe regardless of the fingerprint.
  const std::string scope = arch + "|" + options;
  return StrFormat("%s-%016llx-%016llx%s", kind.c_str(),
                   static_cast<unsigned long long>(kernel_hash),
                   static_cast<unsigned long long>(
                       Fnv64(scope.data(), scope.size())),
                   kRecordSuffix);
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  const Status status = EnsureDir(dir_);
  if (!status.ok()) {
    ORION_LOG(ERROR) << "artifact store: " << status.ToString();
  }
}

Status ArtifactStore::Put(const ArtifactKey& key,
                          const std::vector<std::uint8_t>& payload) {
  ORION_TRACE_SPAN("persist", "persist.store.put");
  Writer body;
  body.Str(key.ToString());
  body.Blob(payload);
  Writer record;
  record.U32(kMagic);
  record.U32(kFormat);
  record.U64(Fnv64(body.bytes().data(), body.bytes().size()));
  record.U64(body.bytes().size());
  std::vector<std::uint8_t> bytes = record.Take();
  bytes.insert(bytes.end(), body.bytes().begin(), body.bytes().end());

  const Status status =
      WriteFileAtomic(dir_ + "/" + key.FileName(), bytes);
  if (status.ok()) {
    ++stats_.writes;
    ORION_COUNTER_ADD("persist.store.writes", 1);
  } else {
    ++stats_.write_failures;
    ORION_COUNTER_ADD("persist.store.write_failures", 1);
    ORION_LOG(WARN) << "artifact store: dropping '" << key.ToString()
                    << "': " << status.ToString();
  }
  return status.WithContext("store put " + key.ToString());
}

ArtifactStore::Verify ArtifactStore::VerifyRecord(
    const std::vector<std::uint8_t>& record, const std::string& file_name,
    std::vector<std::uint8_t>* payload, std::string* embedded_key) const {
  if (record.size() < kHeaderBytes) {
    return Verify::kTruncated;
  }
  Reader header(record.data(), kHeaderBytes);
  const std::uint32_t magic = header.U32();
  const std::uint32_t format = header.U32();
  const std::uint64_t checksum = header.U64();
  const std::uint64_t length = header.U64();
  if (magic != kMagic || format != kFormat) {
    // A framing header that never matched: most likely a flipped bit in
    // the header itself — checksum class (the payload is unreadable).
    return Verify::kChecksum;
  }
  if (record.size() - kHeaderBytes < length) {
    return Verify::kTruncated;
  }
  if (record.size() - kHeaderBytes != length) {
    // Trailing bytes after the framed payload: a torn re-commit or
    // concatenated records — never silently accept.
    return Verify::kTruncated;
  }
  if (Fnv64(record.data() + kHeaderBytes, length) != checksum) {
    return Verify::kChecksum;
  }
  Reader body(record.data() + kHeaderBytes, length);
  const std::string key_text = body.Str();
  std::vector<std::uint8_t> bytes = body.Blob();
  if (!body.AtEnd()) {
    return Verify::kChecksum;
  }
  if (embedded_key != nullptr) {
    *embedded_key = key_text;
  }
  // The record must be filed under the name its own key derives —
  // catches a record copied/duplicated under another key's name.
  const std::size_t cut = key_text.find('|');
  const std::size_t cut2 = key_text.find('|', cut + 1);
  const std::size_t cut3 = key_text.find('|', cut2 + 1);
  if (cut == std::string::npos || cut2 == std::string::npos ||
      cut3 == std::string::npos) {
    return Verify::kKeyMismatch;
  }
  ArtifactKey parsed;
  parsed.kind = key_text.substr(0, cut);
  parsed.kernel_hash =
      std::strtoull(key_text.substr(cut + 1, cut2 - cut - 1).c_str(),
                    nullptr, 16);
  parsed.arch = key_text.substr(cut2 + 1, cut3 - cut2 - 1);
  parsed.options = key_text.substr(cut3 + 1);
  if (parsed.FileName() != file_name) {
    return Verify::kKeyMismatch;
  }
  if (payload != nullptr) {
    *payload = std::move(bytes);
  }
  return Verify::kOk;
}

void ArtifactStore::QuarantineFile(const std::string& file_name) {
  ++stats_.quarantined;
  ORION_COUNTER_ADD("persist.store.quarantined", 1);
  const std::string from = dir_ + "/" + file_name;
  const std::string to = from + kQuarantineSuffix;
  ORION_LOG(WARN) << "artifact store: quarantining corrupt record '"
                  << file_name << "'";
  if (!RenameFile(from, to).ok()) {
    // Renaming away failed (e.g. the medium is read-only); removing is
    // the fallback so the corrupt bytes can never be re-read as data.
    (void)RemoveFile(from);
  }
}

Result<std::vector<std::uint8_t>> ArtifactStore::Get(const ArtifactKey& key) {
  ORION_TRACE_SPAN("persist", "persist.store.get");
  const std::string file_name = key.FileName();
  Result<std::vector<std::uint8_t>> raw =
      ReadFileBytes(dir_ + "/" + file_name);
  if (!raw.has_value()) {
    ++stats_.misses;
    ORION_COUNTER_ADD("persist.store.misses", 1);
    return raw.status().WithContext("store get " + key.ToString());
  }
  std::vector<std::uint8_t> payload;
  std::string embedded_key;
  const Verify verify = VerifyRecord(*raw, file_name, &payload, &embedded_key);
  if (verify != Verify::kOk) {
    QuarantineFile(file_name);
    ++stats_.misses;
    ORION_COUNTER_ADD("persist.store.misses", 1);
    return Status::Error(
        StatusCode::kDataLoss,
        StrFormat("record '%s' failed verification (%s), quarantined",
                  file_name.c_str(),
                  verify == Verify::kTruncated   ? "truncated"
                  : verify == Verify::kChecksum  ? "checksum mismatch"
                                                 : "key mismatch"));
  }
  if (embedded_key != key.ToString()) {
    // Filed consistently but not the record we asked for — a key-hash
    // collision.  Treated as a miss, never as data.
    ++stats_.misses;
    ORION_COUNTER_ADD("persist.store.misses", 1);
    return Status::Error(StatusCode::kNotFound,
                         "key collision on '" + file_name + "'");
  }
  ++stats_.hits;
  ORION_COUNTER_ADD("persist.store.hits", 1);
  return payload;
}

std::string ArtifactStore::FsckReport::ToString() const {
  std::string out = StrFormat(
      "scanned=%u clean=%u truncated=%u checksum=%u key-mismatch=%u "
      "tmp-leftovers=%u",
      scanned, clean, truncated, checksum_mismatch, key_mismatch,
      tmp_leftovers);
  if (!quarantined.empty()) {
    out += ", quarantined=[";
    for (std::size_t i = 0; i < quarantined.size(); ++i) {
      out += (i == 0 ? "" : " ") + quarantined[i];
    }
    out += "]";
  }
  return out;
}

ArtifactStore::FsckReport ArtifactStore::Fsck() {
  ORION_TRACE_SPAN("persist", "persist.store.fsck");
  FsckReport report;
  for (const std::string& name : ListDir(dir_)) {
    if (EndsWith(name, kQuarantineSuffix)) {
      continue;  // already quarantined by an earlier scan or Get
    }
    if (EndsWith(name, kTmpSuffix)) {
      // Crash debris: a commit that never renamed.  The committed state
      // is authoritative; the temp file is quarantined like any other
      // corrupt bytes.
      ++report.tmp_leftovers;
      report.quarantined.push_back(name);
      QuarantineFile(name);
      continue;
    }
    if (!EndsWith(name, kRecordSuffix)) {
      continue;  // not ours (journal, stray files)
    }
    ++report.scanned;
    Result<std::vector<std::uint8_t>> raw = ReadFileBytes(dir_ + "/" + name);
    if (!raw.has_value()) {
      ++report.truncated;
      report.quarantined.push_back(name);
      QuarantineFile(name);
      continue;
    }
    switch (VerifyRecord(*raw, name, nullptr, nullptr)) {
      case Verify::kOk:
        ++report.clean;
        break;
      case Verify::kTruncated:
        ++report.truncated;
        report.quarantined.push_back(name);
        QuarantineFile(name);
        break;
      case Verify::kChecksum:
        ++report.checksum_mismatch;
        report.quarantined.push_back(name);
        QuarantineFile(name);
        break;
      case Verify::kKeyMismatch:
        ++report.key_mismatch;
        report.quarantined.push_back(name);
        QuarantineFile(name);
        break;
    }
  }
  if (!report.Clean()) {
    ORION_LOG(WARN) << "artifact store fsck: " << report.ToString();
  }
  return report;
}

}  // namespace orion::persist
