// Little-endian record (de)serialization for the persistence layer.
//
// Every durable byte Orion writes — journal records, artifact store
// payloads — goes through this one fixed-width codec, so the on-disk
// format is identical across platforms and standard libraries (the same
// reasoning that puts SplitMix64 behind common/rng.h).  The Reader is
// deliberately paranoid: every accessor bounds-checks, a failed read
// poisons the reader, and string/blob lengths are validated against the
// remaining bytes before allocation, so a corrupt record can never make
// a caller allocate gigabytes or read past the buffer.  Callers check
// `ok()` once at the end instead of after every field.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace orion::persist {

// FNV-1a 64-bit over a byte range — the per-record checksum.  (The
// validate subsystem keeps its own copy for memory images; this one is
// persistence-local so persist does not depend on validate.)
inline std::uint64_t Fnv64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t hash = 14695981039346656037ull;  // offset basis
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return hash;
}

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    const auto* data = reinterpret_cast<const std::uint8_t*>(s.data());
    out_.insert(out_.end(), data, data + s.size());
  }
  void Blob(const std::vector<std::uint8_t>& bytes) {
    U64(bytes.size());
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t U8() {
    std::uint8_t v = 0;
    Copy(&v, 1);
    return v;
  }
  std::uint32_t U32() {
    std::uint8_t raw[4] = {};
    Copy(raw, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
    }
    return v;
  }
  std::uint64_t U64() {
    std::uint8_t raw[8] = {};
    Copy(raw, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    }
    return v;
  }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str() {
    const std::uint32_t len = U32();
    if (!ok_ || len > Remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<std::uint8_t> Blob() {
    const std::uint64_t len = U64();
    if (!ok_ || len > Remaining()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> bytes(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return bytes;
  }

  bool ok() const { return ok_; }
  // True when the reader is healthy and every byte was consumed —
  // trailing garbage in a record is corruption, not padding.
  bool AtEnd() const { return ok_ && pos_ == size_; }
  std::size_t Remaining() const { return ok_ ? size_ - pos_ : 0; }

 private:
  void Copy(void* dst, std::size_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace orion::persist
