// Content-addressed artifact store.
//
// Tuning work products — realized multi-version binaries, validation
// verdicts, locked tuning results with their probe medians — are keyed
// by (kernel FNV-1a hash, architecture, tune-options fingerprint) plus
// an artifact kind, so a fleet of submissions of the same kernel hits
// the cache instead of recompiling (ROADMAP item 1; the
// profile→artifact→optimize contract of rocm-perf-lab's on-disk JSON
// artifacts is the exemplar).
//
// Durability discipline:
//   * every record carries a header checksum over its payload and an
//     embedded copy of its own key;
//   * commits are temp-file + rename (persist/io.h), so a reader never
//     sees a half-written record under a committed name;
//   * nothing is ever read without verification: Get re-checksums,
//     re-frames and key-checks every record, and a record that fails
//     any of it is *quarantined* (renamed aside, never deleted — the
//     bytes stay for post-mortems) and reported as a miss;
//   * Fsck() is the same verification as a batch scan over the whole
//     directory, plus temp-leftover cleanup — crash debris from a
//     killed commit is quarantined too.
//
// A corrupt store therefore costs recomputation, never wrong answers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace orion::persist {

// The content address.  `kind` separates artifact types under one
// logical key ("binary": the realized multi-version compile including
// validation verdicts; "tune": the locked Fig. 9 result with probe
// medians).
struct ArtifactKey {
  std::string kind;
  std::uint64_t kernel_hash = 0;  // FNV-1a 64 of the input binary bytes
  std::string arch;               // GPU spec name
  std::string options;            // tune-options fingerprint

  // Canonical text form, embedded verbatim in every record so fsck can
  // detect a record filed under the wrong name (duplicate/copied key).
  std::string ToString() const;
  // File name in the store directory, derived from ToString().
  std::string FileName() const;
};

class ArtifactStore {
 public:
  // Creates `dir` when missing.  Opening never scans — records are
  // verified on use (Get) or in batch (Fsck).
  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }

  // Commits `payload` under `key`.  A failed or injected-faulty write
  // can lose the record (reported as a later miss) but can never
  // corrupt an existing committed record.
  Status Put(const ArtifactKey& key, const std::vector<std::uint8_t>& payload);

  // Loads and verifies the record for `key`.  kNotFound on a miss;
  // kDataLoss when the record exists but fails verification — it is
  // quarantined before returning, so the next Get is a clean miss.
  Result<std::vector<std::uint8_t>> Get(const ArtifactKey& key);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    std::uint64_t write_failures = 0;
    std::uint64_t quarantined = 0;
  };
  const Stats& stats() const { return stats_; }

  // Integrity scan over every record in the directory.
  struct FsckReport {
    std::uint32_t scanned = 0;
    std::uint32_t clean = 0;
    // Corruption classes (each quarantines the record):
    std::uint32_t truncated = 0;          // frame shorter than declared
    std::uint32_t checksum_mismatch = 0;  // payload checksum differs
    std::uint32_t key_mismatch = 0;       // embedded key ≠ file name
                                          // (duplicate/copied record)
    std::uint32_t tmp_leftovers = 0;      // crash debris from a commit
    std::vector<std::string> quarantined;  // file names moved aside

    bool Clean() const {
      return truncated == 0 && checksum_mismatch == 0 && key_mismatch == 0 &&
             tmp_leftovers == 0;
    }
    std::string ToString() const;
  };
  FsckReport Fsck();

 private:
  // Verifies framing, checksum and embedded key.  On success fills
  // `payload`; on failure names the corruption class in `detail`.
  enum class Verify : std::uint8_t {
    kOk,
    kTruncated,
    kChecksum,
    kKeyMismatch,
  };
  Verify VerifyRecord(const std::vector<std::uint8_t>& record,
                      const std::string& file_name,
                      std::vector<std::uint8_t>* payload,
                      std::string* embedded_key) const;
  // Moves a failed record aside as `<name>.quarantine`.
  void QuarantineFile(const std::string& file_name);

  std::string dir_;
  Stats stats_;
};

}  // namespace orion::persist
