#include "persist/io.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/faultinject.h"
#include "common/log.h"
#include "common/strings.h"
#include "telemetry/telemetry.h"

namespace orion::persist {

namespace fs = std::filesystem;

namespace {

CrashMode g_crash_mode = CrashMode::kThrow;

// Ends the process (or the run, in test mode) at an injected
// kill-point.  Buffers the caller already fclose'd are on disk; nothing
// else gets flushed — the on-disk state is exactly what a SIGKILL at
// this instruction would leave.
[[noreturn]] void Crash(const std::string& what) {
  ORION_COUNTER_ADD("persist.injected_kills", 1);
  if (g_crash_mode == CrashMode::kExit) {
    std::fprintf(stderr, "orion: injected crash: %s\n", what.c_str());
    std::_Exit(kCrashExitCode);
  }
  throw SimulatedCrash("injected crash: " + what);
}

Status IoError(const std::string& op, const std::string& path) {
  return Status::Error(StatusCode::kInternal, op + " '" + path + "' failed");
}

// Writes `count` bytes of `bytes` to `path` (mode "wb" or "ab") and
// closes the file so the data is in the kernel before any injected
// crash fires.
Status WriteBytes(const std::string& path, const char* mode,
                  const std::vector<std::uint8_t>& bytes, std::size_t count) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    return IoError("open", path);
  }
  if (count > 0 && std::fwrite(bytes.data(), 1, count, f) != count) {
    std::fclose(f);
    return IoError("write", path);
  }
  if (std::fclose(f) != 0) {
    return IoError("close", path);
  }
  return Status::Ok();
}

}  // namespace

void SetCrashMode(CrashMode mode) { g_crash_mode = mode; }
CrashMode GetCrashMode() { return g_crash_mode; }

void CrashNow(const std::string& what) { Crash(what); }

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    return IoError("create directory", dir);
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

bool IsDirectory(const std::string& path) {
  std::error_code ec;
  return fs::is_directory(path, ec);
}

std::uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  return ec ? IoError("remove", path) : Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  return ec ? IoError("rename", from) : Status::Ok();
}

Status TruncateFile(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  return ec ? IoError("truncate", path) : Status::Ok();
}

Result<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path) {
  if (!FileExists(path)) {
    return Status::Error(StatusCode::kNotFound, "no such file '" + path + "'");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("open", path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return IoError("read", path);
  }
  if (FaultInjector* injector = FaultInjector::Current()) {
    injector->MutatePersistRead(&bytes);
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  PersistWriteFault fault;
  if (FaultInjector* injector = FaultInjector::Current()) {
    fault = injector->NextPersistWrite(/*commit_op=*/true);
  }
  ORION_COUNTER_ADD("persist.io.commits", 1);
  switch (fault.kind) {
    case PersistFault::kEnospc:
      return Status::Error(StatusCode::kResourceExhausted,
                           "injected ENOSPC committing '" + path + "'");
    case PersistFault::kKill: {
      // keep = 0: crash before anything lands; 1..999: torn temp file;
      // 1000: full temp written, crash before the rename publishes it.
      const std::size_t keep = bytes.size() * fault.keep_permille / 1000;
      if (keep > 0) {
        (void)WriteBytes(tmp, "wb", bytes, keep);
      }
      Crash(StrFormat("persist write %llu (commit of '%s')",
                      static_cast<unsigned long long>(
                          FaultInjector::Current()->persist_ops()),
                      path.c_str()));
    }
    case PersistFault::kTornRename: {
      // The temp file lands but the publish step is lost: the committed
      // name never changes.  Reported as success — exactly the silent
      // data loss a crashed rename leaves — so callers must never
      // assume a Put is readable without checking.
      (void)WriteBytes(tmp, "wb", bytes, bytes.size());
      return Status::Ok();
    }
    case PersistFault::kShortWrite: {
      const std::size_t keep = bytes.size() * fault.keep_permille / 1000;
      ORION_RETURN_IF_ERROR(WriteBytes(tmp, "wb", bytes, keep));
      return RenameFile(tmp, path);
    }
    case PersistFault::kNone:
      break;
  }
  ORION_RETURN_IF_ERROR(WriteBytes(tmp, "wb", bytes, bytes.size()));
  return RenameFile(tmp, path);
}

Status AppendFile(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) {
  PersistWriteFault fault;
  if (FaultInjector* injector = FaultInjector::Current()) {
    fault = injector->NextPersistWrite(/*commit_op=*/false);
  }
  ORION_COUNTER_ADD("persist.io.appends", 1);
  switch (fault.kind) {
    case PersistFault::kEnospc:
      return Status::Error(StatusCode::kResourceExhausted,
                           "injected ENOSPC appending to '" + path + "'");
    case PersistFault::kKill: {
      const std::size_t keep = bytes.size() * fault.keep_permille / 1000;
      if (keep > 0) {
        (void)WriteBytes(path, "ab", bytes, keep);
      }
      Crash(StrFormat("persist write %llu (append to '%s')",
                      static_cast<unsigned long long>(
                          FaultInjector::Current()->persist_ops()),
                      path.c_str()));
    }
    case PersistFault::kShortWrite: {
      const std::size_t keep = bytes.size() * fault.keep_permille / 1000;
      return WriteBytes(path, "ab", bytes, keep);
    }
    case PersistFault::kTornRename:  // commit-only fault; not drawn here
    case PersistFault::kNone:
      break;
  }
  return WriteBytes(path, "ab", bytes, bytes.size());
}

Status AcquireLockFile(const std::string& path) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string pid = std::to_string(::getpid());
      const ssize_t wrote = ::write(fd, pid.data(), pid.size());
      ::close(fd);
      if (wrote != static_cast<ssize_t>(pid.size())) {
        // The lock exists but names nobody; still held by us.
        ORION_LOG(WARN) << "lock file '" << path << "' pid write was short";
      }
      return Status::Ok();
    }
    if (errno != EEXIST) {
      return IoError("create lock", path);
    }
    // Somebody holds it.  Read the owner pid raw (not through
    // ReadFileBytes — the injected bitflip-on-read hook must not
    // corrupt liveness checks).
    long holder = 0;
    if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
      char buffer[32] = {0};
      const std::size_t got = std::fread(buffer, 1, sizeof buffer - 1, f);
      std::fclose(f);
      if (got > 0) {
        holder = std::strtol(buffer, nullptr, 10);
      }
    }
    const bool alive = holder > 0 && holder != ::getpid() &&
                       (::kill(static_cast<pid_t>(holder), 0) == 0 ||
                        errno == EPERM);
    if (alive) {
      return Status::Error(
          StatusCode::kUnavailable,
          StrFormat("locked by live process %ld ('%s') — a session "
                    "directory admits one writer at a time",
                    holder, path.c_str()));
    }
    // Stale: the owner is dead (SIGKILL / injected exit-mode crash
    // leaves the file behind) or the file never got a pid.  Break it
    // and retry the exclusive create once.
    ORION_LOG(WARN) << "breaking stale lock '" << path << "' (owner "
                    << holder << " is gone)";
    ORION_COUNTER_ADD("persist.locks_broken", 1);
    std::error_code ec;
    fs::remove(path, ec);
  }
  return Status::Error(StatusCode::kUnavailable,
                       "lock '" + path + "' contested — retry later");
}

void ReleaseLockFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace orion::persist
