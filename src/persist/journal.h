// Write-ahead session journal — the durable decision log of one tuning
// run.
//
// Contract: every decision (compile committed, probe measured, fault
// observed, version quarantined, version locked) is appended to the
// journal *before* it takes effect in the run, so a process killed at
// any instruction can be restarted and will converge to the same locked
// version — replayed probes come from the journal, never from
// re-measurement.
//
// On-disk layout: a fixed file header followed by length-prefixed,
// checksummed record frames:
//
//   file   := header record*
//   header := u32 magic 'OJNL' | u32 format
//   record := u32 frame_len | u8 type | u64 checksum(payload) | payload
//
// `frame_len` counts the bytes after itself (type + checksum +
// payload), so a scanner can skip records it does not understand while
// still checksumming them.
//
// Recovery rule (the only two outcomes — there is no "repair"):
//   * a bad record whose frame reaches EOF is a torn tail from a crash
//     mid-append: the file is truncated back to the last good record
//     and the run resumes;
//   * a bad record with valid data after it is mid-file corruption
//     (bitflip, overwrite): the journal cannot be trusted and the scan
//     fails with kDataLoss — the caller reports it loudly and exits,
//     never resumes over corrupt history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace orion::persist {

enum class RecordType : std::uint8_t {
  kMeta = 1,            // session identity: kernel hash, arch, options
  kArtifactNote = 2,    // a store Put committed (key text)
  kProbeIntent = 3,     // about to launch iteration N with version V
  kProbeResult = 4,     // iteration N measured: ms/energy/occupancy
                        // + guard-state snapshot
  kFaultEvent = 5,      // guard observed a fault
  kQuarantineEvent = 6, // guard quarantined a version
  kLock = 7,            // final decision: locked version + steady stats
  kNote = 8,            // free-form annotation (ignored on replay)
};

const char* RecordTypeName(RecordType type);

struct JournalRecord {
  RecordType type = RecordType::kNote;
  std::vector<std::uint8_t> payload;
};

// Result of scanning a journal file.
struct JournalScan {
  std::vector<JournalRecord> records;  // every verified record, in order
  // File offset just past the last good record — the truncation target
  // that drops a torn tail.
  std::uint64_t stable_size = 0;
  // Bytes of torn tail dropped (0 when the file ended cleanly).
  std::uint64_t truncated_bytes = 0;
};

class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  // Reads and verifies the whole journal.  kNotFound when the file does
  // not exist (a fresh session); kDataLoss on mid-file corruption or a
  // mangled file header.  A torn tail is not an error — it is counted
  // in `truncated_bytes` and excluded from `records`/`stable_size`.
  Result<JournalScan> Scan() const;

  // Truncates the file to `stable_size` (drops a torn tail in place).
  Status TruncateToStable(const JournalScan& scan) const;

  // Appends one record (writing the file header first when the file is
  // new).  The append is the durability point: it must succeed before
  // the decision it records takes effect.
  Status Append(RecordType type, const std::vector<std::uint8_t>& payload);

 private:
  std::string path_;
};

}  // namespace orion::persist
