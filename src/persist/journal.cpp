#include "persist/journal.h"

#include "common/strings.h"
#include "persist/codec.h"
#include "persist/io.h"
#include "telemetry/telemetry.h"

namespace orion::persist {

namespace {

constexpr std::uint32_t kMagic = 0x4f4a4e4c;  // "OJNL"
constexpr std::uint32_t kFormat = 1;
constexpr std::size_t kFileHeaderBytes = 4 + 4;
// frame_len covers: type (1) + checksum (8) + payload.
constexpr std::size_t kFrameOverhead = 1 + 8;

}  // namespace

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kMeta:
      return "meta";
    case RecordType::kArtifactNote:
      return "artifact-note";
    case RecordType::kProbeIntent:
      return "probe-intent";
    case RecordType::kProbeResult:
      return "probe-result";
    case RecordType::kFaultEvent:
      return "fault-event";
    case RecordType::kQuarantineEvent:
      return "quarantine-event";
    case RecordType::kLock:
      return "lock";
    case RecordType::kNote:
      return "note";
  }
  return "unknown";
}

Result<JournalScan> Journal::Scan() const {
  ORION_TRACE_SPAN("persist", "persist.journal.scan");
  Result<std::vector<std::uint8_t>> raw = ReadFileBytes(path_);
  if (!raw.has_value()) {
    return raw.status().WithContext("journal scan");
  }
  const std::vector<std::uint8_t>& bytes = *raw;
  if (bytes.size() < kFileHeaderBytes) {
    // A file so short it has no complete header: a crash during the
    // very first append.  Everything after offset 0 is torn tail.
    JournalScan scan;
    scan.stable_size = 0;
    scan.truncated_bytes = bytes.size();
    return scan;
  }
  Reader header(bytes.data(), kFileHeaderBytes);
  if (header.U32() != kMagic || header.U32() != kFormat) {
    return Status::Error(
        StatusCode::kDataLoss,
        "journal '" + path_ + "' has a corrupt file header");
  }

  JournalScan scan;
  std::size_t pos = kFileHeaderBytes;
  scan.stable_size = pos;
  while (pos < bytes.size()) {
    const std::size_t record_start = pos;
    // Frame length field itself.
    if (bytes.size() - pos < 4) {
      break;  // torn tail: not even a complete length prefix
    }
    Reader len_reader(bytes.data() + pos, 4);
    const std::uint32_t frame_len = len_reader.U32();
    pos += 4;
    if (frame_len < kFrameOverhead) {
      // A length that cannot frame a record.  If this is the last frame
      // before EOF it is a torn append; otherwise the middle of the
      // file is mangled.
      if (record_start + 4 + frame_len >= bytes.size()) {
        pos = record_start;
        break;
      }
      return Status::Error(
          StatusCode::kDataLoss,
          StrFormat("journal '%s': invalid frame length %u at offset %llu",
                    path_.c_str(), frame_len,
                    static_cast<unsigned long long>(record_start)));
    }
    if (bytes.size() - pos < frame_len) {
      pos = record_start;  // frame reaches past EOF: torn tail
      break;
    }
    Reader frame(bytes.data() + pos, frame_len);
    const std::uint8_t type = frame.U8();
    const std::uint64_t checksum = frame.U64();
    const std::size_t payload_len = frame_len - kFrameOverhead;
    const std::uint8_t* payload = bytes.data() + pos + kFrameOverhead;
    if (Fnv64(payload, payload_len) != checksum) {
      // Checksum failure.  Only a frame that touches EOF can be a torn
      // append; a bad checksum with valid bytes after it means the
      // middle of the history is corrupt — unrecoverable.
      if (pos + frame_len >= bytes.size()) {
        pos = record_start;
        break;
      }
      return Status::Error(
          StatusCode::kDataLoss,
          StrFormat("journal '%s': checksum mismatch at offset %llu "
                    "(mid-file corruption)",
                    path_.c_str(),
                    static_cast<unsigned long long>(record_start)));
    }
    JournalRecord record;
    record.type = static_cast<RecordType>(type);
    record.payload.assign(payload, payload + payload_len);
    scan.records.push_back(std::move(record));
    pos += frame_len;
    scan.stable_size = pos;
  }
  scan.truncated_bytes = bytes.size() - scan.stable_size;
  if (scan.truncated_bytes > 0) {
    ORION_COUNTER_ADD("persist.journal.torn_tails", 1);
  }
  return scan;
}

Status Journal::TruncateToStable(const JournalScan& scan) const {
  if (scan.truncated_bytes == 0) {
    return Status::Ok();
  }
  if (scan.stable_size == 0) {
    // Nothing good in the file at all — drop it and start fresh.
    return RemoveFile(path_);
  }
  return TruncateFile(path_, scan.stable_size);
}

Status Journal::Append(RecordType type,
                       const std::vector<std::uint8_t>& payload) {
  Writer frame;
  frame.U32(static_cast<std::uint32_t>(kFrameOverhead + payload.size()));
  frame.U8(static_cast<std::uint8_t>(type));
  frame.U64(Fnv64(payload.data(), payload.size()));
  std::vector<std::uint8_t> bytes = frame.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  if (!FileExists(path_)) {
    Writer header;
    header.U32(kMagic);
    header.U32(kFormat);
    // Header and first record land in one append so a crash between
    // them cannot leave a headerless file with a dangling record.
    std::vector<std::uint8_t> first = header.Take();
    first.insert(first.end(), bytes.begin(), bytes.end());
    bytes = std::move(first);
  }
  ORION_COUNTER_ADD("persist.journal.appends", 1);
  return AppendFile(path_, bytes).WithContext(
      std::string("journal append ") + RecordTypeName(type));
}

}  // namespace orion::persist
