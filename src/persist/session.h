// Crash-safe tuning session: the write-ahead journal + artifact store
// bound to one (kernel, arch, options) tuning run.
//
// A session directory holds:
//   <dir>/journal.ojl   — the write-ahead decision log (persist/journal.h)
//   <dir>/store/        — the content-addressed artifact store
//
// Open() recovers: it scans the journal, truncates a torn tail, drops
// trailing uncommitted records (intents and fault events after the last
// durable probe result — their iteration re-runs live), rebuilds the
// replay state (measured iterations, the latest guard snapshot, the
// lock if the previous run completed), verifies the session identity
// against the caller's, and fscks the store so crash debris is
// quarantined before anything is read.  Mid-file journal corruption is
// unrecoverable by design: Open() fails with kDataLoss and the caller
// reports it loudly (orion-cc exit code 5) — a corrupt history is never
// resumed over.
//
// During a run the session implements runtime::RunJournal: every
// decision is appended *before* it takes effect, so a process killed at
// any durable write resumes to the same locked version, with replayed
// probes served from the journal instead of re-measurement.
//
// A journal append that fails (e.g. injected ENOSPC) degrades the
// session: journaling stops, the run continues correctly, and only the
// resume guarantee is lost — logged once, never silent.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/status.h"
#include "persist/artifact.h"
#include "persist/journal.h"
#include "persist/store.h"
#include "runtime/run_journal.h"

namespace orion::persist {

// Thrown when a resumed run's deterministic walk contradicts the
// journal (a recorded probe names a version the tuner would not pick).
// Semantic corruption — as fatal as a failed checksum.
class JournalError : public OrionError {
 public:
  explicit JournalError(std::string message)
      : OrionError(std::move(message)) {}
};

// The identity a session is bound to.  A session directory reused for a
// different kernel/arch/options is refused (kInvalidArgument), never
// silently mixed.
struct SessionMeta {
  std::uint64_t kernel_hash = 0;  // FNV-1a 64 of the input binary bytes
  std::string gpu;                // GPU spec name
  std::string fingerprint;        // tune-options fingerprint
};

class Session final : public runtime::RunJournal {
 public:
  // Opens (creating or recovering) the session at `dir`.
  // kDataLoss: the journal is corrupt beyond the torn-tail rule.
  // kInvalidArgument: the directory belongs to a different identity.
  // kUnavailable: another live opener (this process or another) holds
  // the session's advisory lock — two writers would interleave journal
  // appends, so Open refuses instead.  A dead owner's stale lock is
  // broken silently (crash recovery).
  static Result<std::unique_ptr<Session>> Open(const std::string& dir,
                                               const SessionMeta& meta);

  // Releases the advisory session lock (held since Open).  Runs on
  // unwind too, so an in-process SimulatedCrash releases it the way a
  // real process death invalidates the pid in the lock file.
  ~Session() override;

  // Opens an existing session without knowing its identity up front:
  // reads the identity from the journal's first meta record, then
  // delegates to Open().  For inspection tools (orion-cc report) that
  // are pointed at a directory, not at the original tuning command.
  // kNotFound: no journal or no meta record at `dir`.
  static Result<std::unique_ptr<Session>> Inspect(const std::string& dir);

  const std::string& dir() const { return dir_; }
  const SessionMeta& meta() const { return meta_; }
  ArtifactStore& store() { return store_; }

  // Recovery facts from Open(), for reporting.
  const ArtifactStore::FsckReport& fsck_report() const { return fsck_report_; }
  std::uint64_t journal_records_recovered() const { return recovered_; }
  std::uint64_t journal_bytes_truncated() const { return truncated_bytes_; }

  // Measured iterations available for replay.
  std::uint32_t recorded_iterations() const {
    return static_cast<std::uint32_t>(iterations_.size());
  }
  // Iterations actually served from the journal this run.
  std::uint32_t replayed_iterations() const { return replayed_; }

  // The previous run's lock, when it completed.
  bool HasLock() const { return lock_.has_value(); }
  const TuneArtifact& lock() const { return *lock_; }

  // Read-back for session analysis (profile::BuildSessionAnalysis):
  // every measured iteration recovered from the journal, and the guard
  // health (quarantine list included) as of the last durable probe
  // result — nullptr when no probe completed.  Both are resume-stable:
  // a crash-resumed session recovers the identical values.
  const std::map<std::uint32_t, runtime::IterationRecord>& recorded() const {
    return iterations_;
  }
  const runtime::HealthReport* guard_health() const {
    return snapshot_.has_value() ? &snapshot_->health : nullptr;
  }

  // True once a journal append has failed and journaling stopped.
  bool degraded() const { return degraded_; }

  // Artifact-store helpers bound to this session's identity.
  ArtifactKey BinaryKey() const { return Key("binary"); }
  ArtifactKey TuneKey() const { return Key("tune"); }
  Status SaveBinary(const runtime::MultiVersionBinary& binary);
  Result<runtime::MultiVersionBinary> LoadBinary();
  Status SaveTuneResult(const TuneArtifact& tune);
  Result<TuneArtifact> LoadTuneResult();

  // runtime::RunJournal implementation.
  bool ReplayIteration(std::uint32_t iteration, std::uint32_t expected_version,
                       runtime::IterationRecord* record) override;
  void ProbeIntent(std::uint32_t iteration, std::uint32_t version) override;
  void ProbeResult(std::uint32_t iteration,
                   const runtime::IterationRecord& record,
                   const runtime::HealthReport& health,
                   const std::vector<std::uint32_t>& fault_counts) override;
  void OnFault(std::uint32_t iteration, std::uint32_t version,
               const Status& status, bool counted) override;
  void OnQuarantine(const runtime::Quarantine& quarantine) override;
  bool RestoreGuard(runtime::HealthReport* health,
                    std::vector<std::uint32_t>* fault_counts) override;
  void LockDecision(const runtime::TunedRunResult& result) override;

 private:
  // Guard state as of the last durable probe result.
  struct GuardSnapshot {
    runtime::HealthReport health;  // aggregates + quarantines (no log)
    std::vector<std::uint32_t> fault_counts;
  };
  // One restored fault-log entry (kFaultEvent record).
  struct LoggedFault {
    std::uint32_t iteration = 0;
    std::uint32_t version = 0;
    Status status;
  };

  Session(std::string dir, SessionMeta meta);

  ArtifactKey Key(const char* kind) const {
    return ArtifactKey{kind, meta_.kernel_hash, meta_.gpu, meta_.fingerprint};
  }
  // Appends one record; on failure degrades the session (log once,
  // journaling stops, the run continues).
  void AppendOrDegrade(RecordType type, const std::vector<std::uint8_t>& payload);
  Status Recover();

  std::string dir_;
  SessionMeta meta_;
  Journal journal_;
  ArtifactStore store_;
  ArtifactStore::FsckReport fsck_report_;

  std::map<std::uint32_t, runtime::IterationRecord> iterations_;
  std::optional<GuardSnapshot> snapshot_;
  std::vector<LoggedFault> restored_faults_;
  std::optional<TuneArtifact> lock_;
  std::uint64_t recovered_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint32_t replayed_ = 0;
  bool degraded_ = false;
  bool lock_held_ = false;  // advisory session lock (dir/lock + registry)
};

}  // namespace orion::persist
