// Artifact payload codecs: the byte formats stored under ArtifactStore
// keys.
//
// Two artifact kinds exist today:
//   * "binary" — a realized MultiVersionBinary: every compiled module
//     (via the VCUB encoder), every candidate version with its
//     occupancy prediction, allocation stats and validation verdict,
//     the compile skips, and the direction decision.  A warm run
//     decodes this instead of re-running the compiler and the
//     validation gate.
//   * "tune"   — a locked tuning decision: the final version, steady
//     stats and per-candidate probe medians of a completed run.  A warm
//     run that finds one skips probing entirely.
//
// Decoders never trust their input: framing is bounds-checked by
// persist::Reader, module bytes go through isa::DecodeModule (which
// throws on corruption — converted to kDataLoss here), and any
// leftover/missing bytes fail the decode.  The store quarantines on
// kDataLoss, so a corrupt artifact costs recomputation, never a wrong
// binary.
//
// Deliberately not serialized: AllocStats::functions (per-function
// allocator internals used only by compile-time reporting).  A decoded
// artifact reports empty function stats; everything the runtime and the
// health report consume round-trips bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "runtime/multiversion.h"

namespace orion::persist {

std::vector<std::uint8_t> EncodeBinaryArtifact(
    const runtime::MultiVersionBinary& binary);

// kDataLoss on any framing/decode failure.
Result<runtime::MultiVersionBinary> DecodeBinaryArtifact(
    const std::vector<std::uint8_t>& bytes);

// The locked decision of a completed tuned run.
struct TuneArtifact {
  std::uint32_t final_version = 0;
  std::uint32_t iterations_to_settle = 0;
  double steady_ms = 0.0;
  double steady_energy = 0.0;
  double steady_occupancy = 0.0;
  bool fallback_taken = false;
  std::uint64_t watchdog_trips = 0;
  std::uint32_t faulted_iterations = 0;
  // Median probe runtime per candidate (unified numbering); NaN for
  // candidates the walk never measured.
  std::vector<double> candidate_median_ms;
};

std::vector<std::uint8_t> EncodeTuneArtifact(const TuneArtifact& tune);
Result<TuneArtifact> DecodeTuneArtifact(const std::vector<std::uint8_t>& bytes);

}  // namespace orion::persist
