
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alloc_test.cpp" "tests/CMakeFiles/orion_tests.dir/alloc_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/alloc_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/orion_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/orion_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/orion_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/orion_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/irreducible_test.cpp" "tests/CMakeFiles/orion_tests.dir/irreducible_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/irreducible_test.cpp.o.d"
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/orion_tests.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/isa_test.cpp.o.d"
  "/root/repo/tests/memory_test.cpp" "tests/CMakeFiles/orion_tests.dir/memory_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/memory_test.cpp.o.d"
  "/root/repo/tests/occupancy_test.cpp" "tests/CMakeFiles/orion_tests.dir/occupancy_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/occupancy_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/orion_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/orion_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/orion_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/orion_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/ssa_test.cpp" "tests/CMakeFiles/orion_tests.dir/ssa_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/ssa_test.cpp.o.d"
  "/root/repo/tests/stack_layout_test.cpp" "tests/CMakeFiles/orion_tests.dir/stack_layout_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/stack_layout_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/orion_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/orion_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/orion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/orion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/orion_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/orion_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/orion_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/orion_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/orion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/orion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/orion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
