# Empty compiler generated dependencies file for orion_tests.
# This may be replaced when dependencies are built.
