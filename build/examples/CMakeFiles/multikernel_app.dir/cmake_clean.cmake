file(REMOVE_RECURSE
  "CMakeFiles/multikernel_app.dir/multikernel_app.cpp.o"
  "CMakeFiles/multikernel_app.dir/multikernel_app.cpp.o.d"
  "multikernel_app"
  "multikernel_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multikernel_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
