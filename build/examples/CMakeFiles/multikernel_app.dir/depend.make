# Empty dependencies file for multikernel_app.
# This may be replaced when dependencies are built.
