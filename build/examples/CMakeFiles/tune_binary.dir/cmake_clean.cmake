file(REMOVE_RECURSE
  "CMakeFiles/tune_binary.dir/tune_binary.cpp.o"
  "CMakeFiles/tune_binary.dir/tune_binary.cpp.o.d"
  "tune_binary"
  "tune_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
