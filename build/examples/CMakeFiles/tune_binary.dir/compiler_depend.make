# Empty compiler generated dependencies file for tune_binary.
# This may be replaced when dependencies are built.
