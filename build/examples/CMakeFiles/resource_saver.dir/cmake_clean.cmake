file(REMOVE_RECURSE
  "CMakeFiles/resource_saver.dir/resource_saver.cpp.o"
  "CMakeFiles/resource_saver.dir/resource_saver.cpp.o.d"
  "resource_saver"
  "resource_saver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_saver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
