# Empty dependencies file for resource_saver.
# This may be replaced when dependencies are built.
