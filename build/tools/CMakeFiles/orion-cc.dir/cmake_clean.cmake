file(REMOVE_RECURSE
  "CMakeFiles/orion-cc.dir/orion_cc.cpp.o"
  "CMakeFiles/orion-cc.dir/orion_cc.cpp.o.d"
  "orion-cc"
  "orion-cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion-cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
