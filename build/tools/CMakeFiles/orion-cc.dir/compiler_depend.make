# Empty compiler generated dependencies file for orion-cc.
# This may be replaced when dependencies are built.
