file(REMOVE_RECURSE
  "CMakeFiles/fig10_srad.dir/fig10_srad.cpp.o"
  "CMakeFiles/fig10_srad.dir/fig10_srad.cpp.o.d"
  "fig10_srad"
  "fig10_srad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_srad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
