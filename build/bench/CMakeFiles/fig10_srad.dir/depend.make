# Empty dependencies file for fig10_srad.
# This may be replaced when dependencies are built.
