file(REMOVE_RECURSE
  "CMakeFiles/fig01_imagedenoising.dir/fig01_imagedenoising.cpp.o"
  "CMakeFiles/fig01_imagedenoising.dir/fig01_imagedenoising.cpp.o.d"
  "fig01_imagedenoising"
  "fig01_imagedenoising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_imagedenoising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
