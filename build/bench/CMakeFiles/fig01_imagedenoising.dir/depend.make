# Empty dependencies file for fig01_imagedenoising.
# This may be replaced when dependencies are built.
