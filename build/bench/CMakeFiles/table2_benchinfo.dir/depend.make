# Empty dependencies file for table2_benchinfo.
# This may be replaced when dependencies are built.
