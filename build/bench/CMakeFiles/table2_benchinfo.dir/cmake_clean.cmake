file(REMOVE_RECURSE
  "CMakeFiles/table2_benchinfo.dir/table2_benchinfo.cpp.o"
  "CMakeFiles/table2_benchinfo.dir/table2_benchinfo.cpp.o.d"
  "table2_benchinfo"
  "table2_benchinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_benchinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
