file(REMOVE_RECURSE
  "CMakeFiles/fig15_curves_gtx680.dir/fig15_curves_gtx680.cpp.o"
  "CMakeFiles/fig15_curves_gtx680.dir/fig15_curves_gtx680.cpp.o.d"
  "fig15_curves_gtx680"
  "fig15_curves_gtx680.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_curves_gtx680.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
