# Empty compiler generated dependencies file for fig15_curves_gtx680.
# This may be replaced when dependencies are built.
