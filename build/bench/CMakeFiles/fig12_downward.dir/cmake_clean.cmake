file(REMOVE_RECURSE
  "CMakeFiles/fig12_downward.dir/fig12_downward.cpp.o"
  "CMakeFiles/fig12_downward.dir/fig12_downward.cpp.o.d"
  "fig12_downward"
  "fig12_downward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_downward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
