# Empty dependencies file for fig12_downward.
# This may be replaced when dependencies are built.
