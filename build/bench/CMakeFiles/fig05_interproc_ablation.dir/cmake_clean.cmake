file(REMOVE_RECURSE
  "CMakeFiles/fig05_interproc_ablation.dir/fig05_interproc_ablation.cpp.o"
  "CMakeFiles/fig05_interproc_ablation.dir/fig05_interproc_ablation.cpp.o.d"
  "fig05_interproc_ablation"
  "fig05_interproc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_interproc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
