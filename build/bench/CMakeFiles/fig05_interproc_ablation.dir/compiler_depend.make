# Empty compiler generated dependencies file for fig05_interproc_ablation.
# This may be replaced when dependencies are built.
