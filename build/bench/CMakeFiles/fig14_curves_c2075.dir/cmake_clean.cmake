file(REMOVE_RECURSE
  "CMakeFiles/fig14_curves_c2075.dir/fig14_curves_c2075.cpp.o"
  "CMakeFiles/fig14_curves_c2075.dir/fig14_curves_c2075.cpp.o.d"
  "fig14_curves_c2075"
  "fig14_curves_c2075.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_curves_c2075.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
