
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_curves_c2075.cpp" "bench/CMakeFiles/fig14_curves_c2075.dir/fig14_curves_c2075.cpp.o" "gcc" "bench/CMakeFiles/fig14_curves_c2075.dir/fig14_curves_c2075.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/orion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/orion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/orion_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/orion_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/orion_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/orion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/orion_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/orion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/orion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
