# Empty compiler generated dependencies file for fig14_curves_c2075.
# This may be replaced when dependencies are built.
