file(REMOVE_RECURSE
  "CMakeFiles/ablation_unroll_leeway.dir/ablation_unroll_leeway.cpp.o"
  "CMakeFiles/ablation_unroll_leeway.dir/ablation_unroll_leeway.cpp.o.d"
  "ablation_unroll_leeway"
  "ablation_unroll_leeway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unroll_leeway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
