# Empty compiler generated dependencies file for ablation_unroll_leeway.
# This may be replaced when dependencies are built.
