# Empty compiler generated dependencies file for table3_cacheconfig.
# This may be replaced when dependencies are built.
