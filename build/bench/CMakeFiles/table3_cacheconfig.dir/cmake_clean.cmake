file(REMOVE_RECURSE
  "CMakeFiles/table3_cacheconfig.dir/table3_cacheconfig.cpp.o"
  "CMakeFiles/table3_cacheconfig.dir/table3_cacheconfig.cpp.o.d"
  "table3_cacheconfig"
  "table3_cacheconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cacheconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
