# Empty dependencies file for fig02_matrixmul.
# This may be replaced when dependencies are built.
