file(REMOVE_RECURSE
  "CMakeFiles/fig02_matrixmul.dir/fig02_matrixmul.cpp.o"
  "CMakeFiles/fig02_matrixmul.dir/fig02_matrixmul.cpp.o.d"
  "fig02_matrixmul"
  "fig02_matrixmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_matrixmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
