file(REMOVE_RECURSE
  "CMakeFiles/orion_common.dir/error.cpp.o"
  "CMakeFiles/orion_common.dir/error.cpp.o.d"
  "CMakeFiles/orion_common.dir/rng.cpp.o"
  "CMakeFiles/orion_common.dir/rng.cpp.o.d"
  "CMakeFiles/orion_common.dir/strings.cpp.o"
  "CMakeFiles/orion_common.dir/strings.cpp.o.d"
  "liborion_common.a"
  "liborion_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
