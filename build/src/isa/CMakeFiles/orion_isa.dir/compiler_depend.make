# Empty compiler generated dependencies file for orion_isa.
# This may be replaced when dependencies are built.
