file(REMOVE_RECURSE
  "CMakeFiles/orion_isa.dir/assembler.cpp.o"
  "CMakeFiles/orion_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/orion_isa.dir/binary.cpp.o"
  "CMakeFiles/orion_isa.dir/binary.cpp.o.d"
  "CMakeFiles/orion_isa.dir/builder.cpp.o"
  "CMakeFiles/orion_isa.dir/builder.cpp.o.d"
  "CMakeFiles/orion_isa.dir/isa.cpp.o"
  "CMakeFiles/orion_isa.dir/isa.cpp.o.d"
  "CMakeFiles/orion_isa.dir/verifier.cpp.o"
  "CMakeFiles/orion_isa.dir/verifier.cpp.o.d"
  "liborion_isa.a"
  "liborion_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
