file(REMOVE_RECURSE
  "liborion_isa.a"
)
