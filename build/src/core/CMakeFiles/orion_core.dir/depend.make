# Empty dependencies file for orion_core.
# This may be replaced when dependencies are built.
