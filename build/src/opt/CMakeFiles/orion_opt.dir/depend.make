# Empty dependencies file for orion_opt.
# This may be replaced when dependencies are built.
