# Empty compiler generated dependencies file for orion_opt.
# This may be replaced when dependencies are built.
