
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/constfold.cpp" "src/opt/CMakeFiles/orion_opt.dir/constfold.cpp.o" "gcc" "src/opt/CMakeFiles/orion_opt.dir/constfold.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/opt/CMakeFiles/orion_opt.dir/dce.cpp.o" "gcc" "src/opt/CMakeFiles/orion_opt.dir/dce.cpp.o.d"
  "/root/repo/src/opt/unroll.cpp" "src/opt/CMakeFiles/orion_opt.dir/unroll.cpp.o" "gcc" "src/opt/CMakeFiles/orion_opt.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/orion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/orion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/orion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
