file(REMOVE_RECURSE
  "liborion_opt.a"
)
