file(REMOVE_RECURSE
  "CMakeFiles/orion_opt.dir/constfold.cpp.o"
  "CMakeFiles/orion_opt.dir/constfold.cpp.o.d"
  "CMakeFiles/orion_opt.dir/dce.cpp.o"
  "CMakeFiles/orion_opt.dir/dce.cpp.o.d"
  "CMakeFiles/orion_opt.dir/unroll.cpp.o"
  "CMakeFiles/orion_opt.dir/unroll.cpp.o.d"
  "liborion_opt.a"
  "liborion_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
