file(REMOVE_RECURSE
  "liborion_arch.a"
)
