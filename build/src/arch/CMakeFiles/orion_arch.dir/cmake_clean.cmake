file(REMOVE_RECURSE
  "CMakeFiles/orion_arch.dir/gpu_spec.cpp.o"
  "CMakeFiles/orion_arch.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/orion_arch.dir/occupancy.cpp.o"
  "CMakeFiles/orion_arch.dir/occupancy.cpp.o.d"
  "liborion_arch.a"
  "liborion_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
