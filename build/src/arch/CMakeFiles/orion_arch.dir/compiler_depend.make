# Empty compiler generated dependencies file for orion_arch.
# This may be replaced when dependencies are built.
