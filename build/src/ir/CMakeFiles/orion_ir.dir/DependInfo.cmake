
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/callgraph.cpp" "src/ir/CMakeFiles/orion_ir.dir/callgraph.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/callgraph.cpp.o.d"
  "/root/repo/src/ir/cfg.cpp" "src/ir/CMakeFiles/orion_ir.dir/cfg.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/cfg.cpp.o.d"
  "/root/repo/src/ir/dominance.cpp" "src/ir/CMakeFiles/orion_ir.dir/dominance.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/dominance.cpp.o.d"
  "/root/repo/src/ir/interference.cpp" "src/ir/CMakeFiles/orion_ir.dir/interference.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/interference.cpp.o.d"
  "/root/repo/src/ir/liveness.cpp" "src/ir/CMakeFiles/orion_ir.dir/liveness.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/liveness.cpp.o.d"
  "/root/repo/src/ir/loops.cpp" "src/ir/CMakeFiles/orion_ir.dir/loops.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/loops.cpp.o.d"
  "/root/repo/src/ir/ssa.cpp" "src/ir/CMakeFiles/orion_ir.dir/ssa.cpp.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/ssa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
