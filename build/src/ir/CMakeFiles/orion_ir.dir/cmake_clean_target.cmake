file(REMOVE_RECURSE
  "liborion_ir.a"
)
