file(REMOVE_RECURSE
  "CMakeFiles/orion_ir.dir/callgraph.cpp.o"
  "CMakeFiles/orion_ir.dir/callgraph.cpp.o.d"
  "CMakeFiles/orion_ir.dir/cfg.cpp.o"
  "CMakeFiles/orion_ir.dir/cfg.cpp.o.d"
  "CMakeFiles/orion_ir.dir/dominance.cpp.o"
  "CMakeFiles/orion_ir.dir/dominance.cpp.o.d"
  "CMakeFiles/orion_ir.dir/interference.cpp.o"
  "CMakeFiles/orion_ir.dir/interference.cpp.o.d"
  "CMakeFiles/orion_ir.dir/liveness.cpp.o"
  "CMakeFiles/orion_ir.dir/liveness.cpp.o.d"
  "CMakeFiles/orion_ir.dir/loops.cpp.o"
  "CMakeFiles/orion_ir.dir/loops.cpp.o.d"
  "CMakeFiles/orion_ir.dir/ssa.cpp.o"
  "CMakeFiles/orion_ir.dir/ssa.cpp.o.d"
  "liborion_ir.a"
  "liborion_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
