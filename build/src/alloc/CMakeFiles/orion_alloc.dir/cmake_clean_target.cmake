file(REMOVE_RECURSE
  "liborion_alloc.a"
)
