# Empty compiler generated dependencies file for orion_alloc.
# This may be replaced when dependencies are built.
