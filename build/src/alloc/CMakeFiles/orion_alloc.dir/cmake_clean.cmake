file(REMOVE_RECURSE
  "CMakeFiles/orion_alloc.dir/allocator.cpp.o"
  "CMakeFiles/orion_alloc.dir/allocator.cpp.o.d"
  "CMakeFiles/orion_alloc.dir/coloring.cpp.o"
  "CMakeFiles/orion_alloc.dir/coloring.cpp.o.d"
  "CMakeFiles/orion_alloc.dir/hungarian.cpp.o"
  "CMakeFiles/orion_alloc.dir/hungarian.cpp.o.d"
  "CMakeFiles/orion_alloc.dir/spill.cpp.o"
  "CMakeFiles/orion_alloc.dir/spill.cpp.o.d"
  "CMakeFiles/orion_alloc.dir/stack_layout.cpp.o"
  "CMakeFiles/orion_alloc.dir/stack_layout.cpp.o.d"
  "liborion_alloc.a"
  "liborion_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
