
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cpp" "src/alloc/CMakeFiles/orion_alloc.dir/allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/orion_alloc.dir/allocator.cpp.o.d"
  "/root/repo/src/alloc/coloring.cpp" "src/alloc/CMakeFiles/orion_alloc.dir/coloring.cpp.o" "gcc" "src/alloc/CMakeFiles/orion_alloc.dir/coloring.cpp.o.d"
  "/root/repo/src/alloc/hungarian.cpp" "src/alloc/CMakeFiles/orion_alloc.dir/hungarian.cpp.o" "gcc" "src/alloc/CMakeFiles/orion_alloc.dir/hungarian.cpp.o.d"
  "/root/repo/src/alloc/spill.cpp" "src/alloc/CMakeFiles/orion_alloc.dir/spill.cpp.o" "gcc" "src/alloc/CMakeFiles/orion_alloc.dir/spill.cpp.o.d"
  "/root/repo/src/alloc/stack_layout.cpp" "src/alloc/CMakeFiles/orion_alloc.dir/stack_layout.cpp.o" "gcc" "src/alloc/CMakeFiles/orion_alloc.dir/stack_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/orion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
