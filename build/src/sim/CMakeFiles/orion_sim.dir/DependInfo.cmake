
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exec.cpp" "src/sim/CMakeFiles/orion_sim.dir/exec.cpp.o" "gcc" "src/sim/CMakeFiles/orion_sim.dir/exec.cpp.o.d"
  "/root/repo/src/sim/gpu_sim.cpp" "src/sim/CMakeFiles/orion_sim.dir/gpu_sim.cpp.o" "gcc" "src/sim/CMakeFiles/orion_sim.dir/gpu_sim.cpp.o.d"
  "/root/repo/src/sim/interpreter.cpp" "src/sim/CMakeFiles/orion_sim.dir/interpreter.cpp.o" "gcc" "src/sim/CMakeFiles/orion_sim.dir/interpreter.cpp.o.d"
  "/root/repo/src/sim/linked.cpp" "src/sim/CMakeFiles/orion_sim.dir/linked.cpp.o" "gcc" "src/sim/CMakeFiles/orion_sim.dir/linked.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/orion_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/orion_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/orion_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/orion_sim.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/orion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
