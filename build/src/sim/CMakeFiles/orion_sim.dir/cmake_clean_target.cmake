file(REMOVE_RECURSE
  "liborion_sim.a"
)
