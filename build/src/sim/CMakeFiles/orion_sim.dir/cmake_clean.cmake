file(REMOVE_RECURSE
  "CMakeFiles/orion_sim.dir/exec.cpp.o"
  "CMakeFiles/orion_sim.dir/exec.cpp.o.d"
  "CMakeFiles/orion_sim.dir/gpu_sim.cpp.o"
  "CMakeFiles/orion_sim.dir/gpu_sim.cpp.o.d"
  "CMakeFiles/orion_sim.dir/interpreter.cpp.o"
  "CMakeFiles/orion_sim.dir/interpreter.cpp.o.d"
  "CMakeFiles/orion_sim.dir/linked.cpp.o"
  "CMakeFiles/orion_sim.dir/linked.cpp.o.d"
  "CMakeFiles/orion_sim.dir/memory.cpp.o"
  "CMakeFiles/orion_sim.dir/memory.cpp.o.d"
  "CMakeFiles/orion_sim.dir/report.cpp.o"
  "CMakeFiles/orion_sim.dir/report.cpp.o.d"
  "liborion_sim.a"
  "liborion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
