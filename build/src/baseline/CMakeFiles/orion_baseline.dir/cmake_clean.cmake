file(REMOVE_RECURSE
  "CMakeFiles/orion_baseline.dir/baseline.cpp.o"
  "CMakeFiles/orion_baseline.dir/baseline.cpp.o.d"
  "liborion_baseline.a"
  "liborion_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
