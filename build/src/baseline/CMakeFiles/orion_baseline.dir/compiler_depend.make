# Empty compiler generated dependencies file for orion_baseline.
# This may be replaced when dependencies are built.
