file(REMOVE_RECURSE
  "liborion_baseline.a"
)
