# Empty dependencies file for orion_runtime.
# This may be replaced when dependencies are built.
