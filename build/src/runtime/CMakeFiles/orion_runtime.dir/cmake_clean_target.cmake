file(REMOVE_RECURSE
  "liborion_runtime.a"
)
