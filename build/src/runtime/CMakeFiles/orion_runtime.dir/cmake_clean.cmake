file(REMOVE_RECURSE
  "CMakeFiles/orion_runtime.dir/dynamic_tuner.cpp.o"
  "CMakeFiles/orion_runtime.dir/dynamic_tuner.cpp.o.d"
  "CMakeFiles/orion_runtime.dir/launcher.cpp.o"
  "CMakeFiles/orion_runtime.dir/launcher.cpp.o.d"
  "liborion_runtime.a"
  "liborion_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
