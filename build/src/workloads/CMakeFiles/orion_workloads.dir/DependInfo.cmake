
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/backprop.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/backprop.cpp.o.d"
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/cfd.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/cfd.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/cfd.cpp.o.d"
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/dxtc.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/dxtc.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/dxtc.cpp.o.d"
  "/root/repo/src/workloads/fdtd3d.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/fdtd3d.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/fdtd3d.cpp.o.d"
  "/root/repo/src/workloads/gaussian.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/gaussian.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/gaussian.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/imagedenoising.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/imagedenoising.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/imagedenoising.cpp.o.d"
  "/root/repo/src/workloads/matrixmul.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/matrixmul.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/matrixmul.cpp.o.d"
  "/root/repo/src/workloads/particles.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/particles.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/particles.cpp.o.d"
  "/root/repo/src/workloads/recursivegaussian.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/recursivegaussian.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/recursivegaussian.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/srad.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/srad.cpp.o.d"
  "/root/repo/src/workloads/streamcluster.cpp" "src/workloads/CMakeFiles/orion_workloads.dir/streamcluster.cpp.o" "gcc" "src/workloads/CMakeFiles/orion_workloads.dir/streamcluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/orion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
