file(REMOVE_RECURSE
  "CMakeFiles/orion_workloads.dir/backprop.cpp.o"
  "CMakeFiles/orion_workloads.dir/backprop.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/bfs.cpp.o"
  "CMakeFiles/orion_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/cfd.cpp.o"
  "CMakeFiles/orion_workloads.dir/cfd.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/common.cpp.o"
  "CMakeFiles/orion_workloads.dir/common.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/dxtc.cpp.o"
  "CMakeFiles/orion_workloads.dir/dxtc.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/fdtd3d.cpp.o"
  "CMakeFiles/orion_workloads.dir/fdtd3d.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/gaussian.cpp.o"
  "CMakeFiles/orion_workloads.dir/gaussian.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/orion_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/imagedenoising.cpp.o"
  "CMakeFiles/orion_workloads.dir/imagedenoising.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/matrixmul.cpp.o"
  "CMakeFiles/orion_workloads.dir/matrixmul.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/particles.cpp.o"
  "CMakeFiles/orion_workloads.dir/particles.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/recursivegaussian.cpp.o"
  "CMakeFiles/orion_workloads.dir/recursivegaussian.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/registry.cpp.o"
  "CMakeFiles/orion_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/srad.cpp.o"
  "CMakeFiles/orion_workloads.dir/srad.cpp.o.d"
  "CMakeFiles/orion_workloads.dir/streamcluster.cpp.o"
  "CMakeFiles/orion_workloads.dir/streamcluster.cpp.o.d"
  "liborion_workloads.a"
  "liborion_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
