file(REMOVE_RECURSE
  "liborion_workloads.a"
)
